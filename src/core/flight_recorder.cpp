#include "core/flight_recorder.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <utility>

namespace icgkit::core {

namespace {

/// Serialized size of one BeatRecord in the canonical beat byte form —
/// measured once from serialize_beat itself so the two can never drift.
std::size_t beat_record_bytes() {
  static const std::size_t n = [] {
    std::vector<unsigned char> v;
    serialize_beat(BeatRecord{}, v);
    return v.size();
  }();
  return n;
}

void serialize_beats(std::span<const BeatRecord> beats,
                     std::vector<unsigned char>& out) {
  out.clear();
  for (const BeatRecord& rec : beats) serialize_beat(rec, out);
}

template <typename W>
void write_summary(W& w, const QualitySummary& s) {
  w.u64(s.beats);
  w.u64(s.usable);
  for (const std::uint64_t c : s.flaw_counts) w.u64(c);
  w.u64(s.ecg_dropouts);
  w.u64(s.z_dropouts);
  w.u64(s.detector_resets);
  w.u64(s.ensemble_folds_skipped);
  w.u64(s.snr_beats);
  w.f64(s.sum_snr_db);
  w.f64(s.min_snr_db);
}

QualitySummary read_summary(StateReader& r) {
  QualitySummary s;
  s.beats = r.u64();
  s.usable = r.u64();
  for (std::uint64_t& c : s.flaw_counts) c = r.u64();
  s.ecg_dropouts = r.u64();
  s.z_dropouts = r.u64();
  s.detector_resets = r.u64();
  s.ensemble_folds_skipped = r.u64();
  s.snr_beats = r.u64();
  s.sum_snr_db = r.f64();
  s.min_snr_db = r.f64();
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// FileRecorderSink

struct FileRecorderSink::Impl {
  std::ofstream out;
  std::string path;
};

FileRecorderSink::FileRecorderSink(const std::string& path) : impl_(new Impl) {
  impl_->path = path;
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    ICGKIT_THROW(CheckpointError("cannot open flight record file '" + path + "'"));
  }
}

FileRecorderSink::~FileRecorderSink() { delete impl_; }

void FileRecorderSink::write(const std::uint8_t* data, std::size_t n) {
  impl_->out.write(reinterpret_cast<const char*>(data),
                   static_cast<std::streamsize>(n));
  if (!impl_->out)
    ICGKIT_THROW(CheckpointError("short write to flight record file '" +
                                 impl_->path + "'"));
}

void FileRecorderSink::flush() {
  impl_->out.flush();
  if (!impl_->out)
    ICGKIT_THROW(CheckpointError("flush failed on flight record file '" +
                                 impl_->path + "'"));
}

// ---------------------------------------------------------------------------
// FlightRecorder

void FlightRecorder::flush_scratch(StateWriter&& w) {
  scratch_ = w.take();
  sink_.write(scratch_.data(), scratch_.size());
  bytes_ += scratch_.size();
}

void FlightRecorder::begin(std::uint64_t start_samples) {
  const CheckpointProbe probe = probe_checkpoint(ckpt_blob_);
  if (!probe.valid)
    ICGKIT_THROW(CheckpointError("flight recorder: initial checkpoint is invalid"));
  const auto expect_window = static_cast<std::uint64_t>(
      std::max(4.0, cfg_.window_s) * probe.fs);
  if (expect_window != probe.window_samples)
    ICGKIT_THROW(CheckpointError(
        "flight recorder: window_s does not match the recorded pipeline"));

  StateWriter w(std::move(scratch_));  // with magic/version header
  w.begin_section("RHDR");
  w.u32(kFlightVersion);
  w.u8(probe.backend_fixed ? 1 : 0);
  w.f64(probe.fs);
  w.f64(cfg_.window_s);
  w.u64(probe.window_samples);
  w.boolean(probe.ensemble);
  w.u64(cfg_.checkpoint_interval);
  w.u64(start_samples);
  w.u64(cfg_.seed);
  w.i32(cfg_.tier);
  w.u64(cfg_.subject);
  w.u32(static_cast<std::uint32_t>(cfg_.note.size()));
  w.bytes(reinterpret_cast<const std::uint8_t*>(cfg_.note.data()),
          cfg_.note.size());
  w.end_section();
  flush_scratch(std::move(w));

  // The initial checkpoint makes a recording started mid-session
  // self-contained; for a fresh session it is a tiny near-empty blob.
  record_checkpoint(start_samples);
}

void FlightRecorder::record_chunk(dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                                  std::span<const BeatRecord> emitted) {
  if (closed_)
    ICGKIT_THROW(CheckpointError("flight recorder: tap after the recording closed"));
  if (ecg_mv.size() != z_ohm.size())
    ICGKIT_THROW(CheckpointError("flight recorder: chunk length mismatch"));
  serialize_beats(emitted, beat_bytes_);

  StateWriter w = StateWriter::continuation(std::move(scratch_));
  w.begin_section("CHNK");
  w.u64(chunks_);
  w.u32(static_cast<std::uint32_t>(ecg_mv.size()));
  w.f64_array(ecg_mv.data(), ecg_mv.size());
  w.f64_array(z_ohm.data(), z_ohm.size());
  w.u32(static_cast<std::uint32_t>(beat_bytes_.size()));
  w.bytes(reinterpret_cast<const std::uint8_t*>(beat_bytes_.data()),
          beat_bytes_.size());
  w.end_section();
  flush_scratch(std::move(w));
  ++chunks_;
}

void FlightRecorder::record_checkpoint(std::uint64_t samples) {
  StateWriter w = StateWriter::continuation(std::move(scratch_));
  w.begin_section("CKPT");
  w.u64(samples);
  w.u32(static_cast<std::uint32_t>(ckpt_blob_.size()));
  w.bytes(ckpt_blob_.data(), ckpt_blob_.size());
  w.end_section();
  flush_scratch(std::move(w));
  ++checkpoints_;
  next_checkpoint_at_ = samples + cfg_.checkpoint_interval;
}

void FlightRecorder::record_end(std::span<const BeatRecord> tail,
                                const QualitySummary& summary,
                                std::uint64_t samples, bool finished) {
  if (closed_)
    ICGKIT_THROW(CheckpointError("flight recorder: already closed"));
  serialize_beats(tail, beat_bytes_);

  StateWriter w = StateWriter::continuation(std::move(scratch_));
  w.begin_section("FINI");
  w.boolean(finished);
  w.u32(static_cast<std::uint32_t>(beat_bytes_.size()));
  w.bytes(reinterpret_cast<const std::uint8_t*>(beat_bytes_.data()),
          beat_bytes_.size());
  write_summary(w, summary);
  w.u64(samples);
  w.u64(chunks_);
  w.end_section();
  flush_scratch(std::move(w));
  closed_ = true;
  sink_.flush();
}

// ---------------------------------------------------------------------------
// FlightReader

FlightReader::FlightReader(std::span<const std::uint8_t> file) : r_(file) {
  r_.begin_section("RHDR");
  header_.flight_version = r_.u32();
  if (header_.flight_version != kFlightVersion)
    r_.fail("unsupported flight-record version " +
            std::to_string(header_.flight_version) + " (reader supports " +
            std::to_string(kFlightVersion) + ")");
  const std::uint8_t backend = r_.u8();
  if (backend > 1) r_.fail("flight record: bad backend tag");
  header_.backend_fixed = backend == 1;
  header_.fs = r_.f64();
  if (!(header_.fs > 0.0) || !(header_.fs <= 1e6))
    r_.fail("flight record: implausible sample rate");
  header_.window_s = r_.f64();
  header_.window_samples = r_.u64();
  if (header_.window_samples !=
      static_cast<std::uint64_t>(std::max(4.0, header_.window_s) * header_.fs))
    r_.fail("flight record: window fields disagree");
  if (header_.window_samples > (1u << 27))
    r_.fail("flight record: implausible window length");
  header_.ensemble = r_.boolean();
  header_.checkpoint_interval = r_.u64();
  header_.start_samples = r_.u64();
  header_.seed = r_.u64();
  header_.tier = r_.i32();
  header_.subject = r_.u64();
  const std::uint32_t note_len = r_.u32();
  if (note_len > r_.section_remaining())
    r_.fail("flight record: note overruns its section");
  const auto note = r_.bytes(note_len);
  header_.note.assign(reinterpret_cast<const char*>(note.data()), note.size());
  r_.end_section();
}

bool FlightReader::next(Event& ev) {
  char tag[5];
  if (!r_.peek_tag(tag)) return false;
  if (saw_end_)
    r_.fail(std::string("flight record: section '") + tag + "' after FINI");

  if (std::memcmp(tag, "CKPT", 4) == 0) {
    ev.kind = EventKind::Checkpoint;
    r_.begin_section("CKPT");
    ev.samples = r_.u64();
    const std::uint32_t len = r_.u32();
    if (len > r_.section_remaining())
      r_.fail("flight record: checkpoint blob overruns its section");
    ev.state = r_.bytes(len);
    r_.end_section();
    return true;
  }

  if (std::memcmp(tag, "CHNK", 4) == 0) {
    ev.kind = EventKind::Chunk;
    r_.begin_section("CHNK");
    ev.chunk_index = r_.u64();
    if (ev.chunk_index != expect_chunk_)
      r_.fail("flight record: chunk out of order");
    ++expect_chunk_;
    const std::uint32_t n = r_.u32();
    if (r_.section_remaining() < 16u * static_cast<std::size_t>(n) + 4u)
      r_.fail("flight record: chunk sample count overruns its section");
    ev.ecg.resize(n);
    ev.z.resize(n);
    r_.f64_array(ev.ecg.data(), n);
    r_.f64_array(ev.z.data(), n);
    const std::uint32_t beat_len = r_.u32();
    if (beat_len > r_.section_remaining())
      r_.fail("flight record: beat bytes overrun their section");
    if (beat_len % beat_record_bytes() != 0)
      r_.fail("flight record: beat byte length is not a whole record count");
    ev.beat_bytes = r_.bytes(beat_len);
    r_.end_section();
    return true;
  }

  if (std::memcmp(tag, "FINI", 4) == 0) {
    ev.kind = EventKind::End;
    r_.begin_section("FINI");
    ev.finished = r_.boolean();
    const std::uint32_t tail_len = r_.u32();
    if (tail_len > r_.section_remaining())
      r_.fail("flight record: tail bytes overrun their section");
    if (tail_len % beat_record_bytes() != 0)
      r_.fail("flight record: tail byte length is not a whole record count");
    ev.beat_bytes = r_.bytes(tail_len);
    ev.summary = read_summary(r_);
    ev.samples = r_.u64();
    ev.total_chunks = r_.u64();
    if (ev.total_chunks != expect_chunk_)
      r_.fail("flight record: FINI chunk count disagrees with the stream");
    r_.end_section();
    saw_end_ = true;
    return true;
  }

  r_.fail(std::string("flight record: unknown section '") + tag + "'");
}

// ---------------------------------------------------------------------------
// Replay

namespace {

template <typename B>
BasicStreamingBeatPipeline<B> make_replay_engine(const FlightHeader& h) {
  PipelineConfig cfg;
  cfg.enable_ensemble = h.ensemble;
  BasicStreamingBeatPipeline<B> engine(h.fs, cfg, h.window_s);
  if (engine.window_samples() != h.window_samples)
    ICGKIT_THROW(CheckpointError("flight record: replay window mismatch"));
  return engine;
}

/// A fresh replay engine stands in for a missing initial checkpoint only
/// when the recording legitimately starts at sample 0.
inline void restore_or_refuse(const FlightHeader& h, bool restored) {
  if (restored) return;
  if (h.start_samples != 0)
    ICGKIT_THROW(CheckpointError(
        "flight record: mid-session recording lacks its initial checkpoint"));
}

template <typename B>
FlightVerifyReport verify_impl(std::span<const std::uint8_t> file,
                               bool check_checkpoints) {
  FlightReader rd(file);
  auto engine = make_replay_engine<B>(rd.header());

  FlightVerifyReport rep;
  FlightReader::Event ev;
  std::vector<BeatRecord> beats;
  std::vector<unsigned char> replay_bytes;
  std::vector<std::uint8_t> state_scratch;
  bool restored = false;
  std::int64_t ckpt_ordinal = -1;  // initial checkpoint is ordinal -1

  while (rd.next(ev)) {
    switch (ev.kind) {
      case FlightReader::EventKind::Checkpoint: {
        if (!restored) {
          engine.restore(ev.state);
          restored = true;
        } else if (check_checkpoints) {
          engine.checkpoint_into(state_scratch);
          const bool same = state_scratch.size() == ev.state.size() &&
                            std::equal(state_scratch.begin(), state_scratch.end(),
                                       ev.state.begin());
          if (!same && rep.first_divergent_checkpoint < 0)
            rep.first_divergent_checkpoint = ckpt_ordinal;
        }
        ++ckpt_ordinal;
        break;
      }
      case FlightReader::EventKind::Chunk: {
        restore_or_refuse(rd.header(), restored);
        restored = true;
        beats.clear();
        engine.push_into(dsp::SignalView(ev.ecg), dsp::SignalView(ev.z), beats);
        serialize_beats(beats, replay_bytes);
        rep.beats_replayed += beats.size();
        rep.beats_recorded += ev.beat_bytes.size() / beat_record_bytes();
        const bool same = replay_bytes.size() == ev.beat_bytes.size() &&
                          std::equal(replay_bytes.begin(), replay_bytes.end(),
                                     ev.beat_bytes.begin());
        if (!same && rep.first_divergent_chunk < 0)
          rep.first_divergent_chunk = static_cast<std::int64_t>(ev.chunk_index);
        ++rep.chunks;
        break;
      }
      case FlightReader::EventKind::End: {
        restore_or_refuse(rd.header(), restored);
        restored = true;
        rep.has_end = true;
        rep.finished = ev.finished;
        rep.beats_recorded += ev.beat_bytes.size() / beat_record_bytes();
        if (ev.finished) {
          beats.clear();
          engine.finish_into(beats);
          serialize_beats(beats, replay_bytes);
          rep.beats_replayed += beats.size();
          rep.tail_match = replay_bytes.size() == ev.beat_bytes.size() &&
                           std::equal(replay_bytes.begin(), replay_bytes.end(),
                                      ev.beat_bytes.begin());
        }
        rep.summary_match =
            summaries_identical(engine.quality_summary(), ev.summary) &&
            ev.samples == engine.samples_consumed();
        break;
      }
    }
  }
  rep.samples = engine.samples_consumed();
  rep.ok = rep.first_divergent_chunk < 0 && rep.first_divergent_checkpoint < 0 &&
           rep.summary_match && rep.tail_match;
  return rep;
}

/// Scans the file once and returns the ordinal (among all CKPT sections)
/// of the latest checkpoint positioned at or before `target`.
std::int64_t latest_checkpoint_before(std::span<const std::uint8_t> file,
                                      std::uint64_t target) {
  FlightReader rd(file);
  FlightReader::Event ev;
  std::int64_t ordinal = -1, best = -1;
  while (rd.next(ev)) {
    if (ev.kind != FlightReader::EventKind::Checkpoint) continue;
    ++ordinal;
    if (ev.samples <= target) best = ordinal;
  }
  return best;
}

template <typename B>
FlightSeekReport seek_impl(std::span<const std::uint8_t> file,
                           std::uint64_t target) {
  FlightSeekReport rep;
  rep.target_sample = target;
  const std::int64_t best = latest_checkpoint_before(file, target);
  if (best < 0)
    ICGKIT_THROW(CheckpointError(
        "flight record: no checkpoint at or before the seek target"));

  FlightReader rd(file);
  auto engine = make_replay_engine<B>(rd.header());
  FlightReader::Event ev;
  std::vector<BeatRecord> beats;
  std::vector<unsigned char> replay_bytes;
  std::int64_t ordinal = -1;
  bool restored = false;

  while (rd.next(ev)) {
    switch (ev.kind) {
      case FlightReader::EventKind::Checkpoint:
        if (++ordinal == best) {
          engine.restore(ev.state);
          rep.restored_at = ev.samples;
          restored = true;
        }
        break;
      case FlightReader::EventKind::Chunk: {
        if (!restored) break;  // prefix the checkpoint already covers
        beats.clear();
        engine.push_into(dsp::SignalView(ev.ecg), dsp::SignalView(ev.z), beats);
        serialize_beats(beats, replay_bytes);
        rep.suffix_beats += beats.size();
        const bool same = replay_bytes.size() == ev.beat_bytes.size() &&
                          std::equal(replay_bytes.begin(), replay_bytes.end(),
                                     ev.beat_bytes.begin());
        if (!same && rep.first_divergent_chunk < 0)
          rep.first_divergent_chunk = static_cast<std::int64_t>(ev.chunk_index);
        ++rep.suffix_chunks;
        break;
      }
      case FlightReader::EventKind::End: {
        if (!restored) break;
        if (ev.finished) {
          beats.clear();
          engine.finish_into(beats);
          serialize_beats(beats, replay_bytes);
          rep.suffix_beats += beats.size();
          rep.tail_match = replay_bytes.size() == ev.beat_bytes.size() &&
                           std::equal(replay_bytes.begin(), replay_bytes.end(),
                                      ev.beat_bytes.begin());
        }
        rep.summary_match =
            summaries_identical(engine.quality_summary(), ev.summary) &&
            ev.samples == engine.samples_consumed();
        break;
      }
    }
  }
  if (!restored)
    ICGKIT_THROW(CheckpointError("flight record: seek checkpoint vanished"));
  rep.ok = rep.first_divergent_chunk < 0 && rep.summary_match && rep.tail_match;
  return rep;
}

template <typename B>
FlightStateReport state_at_impl(std::span<const std::uint8_t> file,
                                std::uint64_t target,
                                std::vector<std::uint8_t>& state_out) {
  const std::int64_t best = latest_checkpoint_before(file, target);
  if (best < 0)
    ICGKIT_THROW(CheckpointError(
        "flight record: no checkpoint at or before the dump target"));

  FlightReader rd(file);
  auto engine = make_replay_engine<B>(rd.header());
  FlightReader::Event ev;
  std::vector<BeatRecord> beats;
  FlightStateReport rep;
  std::int64_t ordinal = -1;
  bool restored = false;

  while (rd.next(ev)) {
    if (ev.kind == FlightReader::EventKind::Checkpoint) {
      if (++ordinal == best) {
        engine.restore(ev.state);
        restored = true;
      }
      continue;
    }
    if (ev.kind != FlightReader::EventKind::Chunk || !restored) continue;
    if (engine.samples_consumed() >= target) break;
    beats.clear();
    engine.push_into(dsp::SignalView(ev.ecg), dsp::SignalView(ev.z), beats);
    rep.beats += beats.size();
  }
  if (!restored)
    ICGKIT_THROW(CheckpointError("flight record: dump checkpoint vanished"));
  rep.samples = engine.samples_consumed();
  engine.checkpoint_into(state_out);
  return rep;
}

/// Pulls the next Chunk/End event, stashing any Checkpoint events passed
/// over (their spans alias the file and stay valid).
bool next_output_event(FlightReader& rd, FlightReader::Event& ev,
                       std::vector<std::pair<std::uint64_t,
                                             std::span<const std::uint8_t>>>& ckpts) {
  while (rd.next(ev)) {
    if (ev.kind == FlightReader::EventKind::Checkpoint) {
      ckpts.emplace_back(ev.samples, ev.state);
      continue;
    }
    return true;
  }
  return false;
}

}  // namespace

FlightVerifyReport flight_verify(std::span<const std::uint8_t> file,
                                 bool check_checkpoints) {
  FlightReader probe(file);
  return probe.header().backend_fixed
             ? verify_impl<dsp::Q31Backend>(file, check_checkpoints)
             : verify_impl<dsp::DoubleBackend>(file, check_checkpoints);
}

FlightSeekReport flight_seek(std::span<const std::uint8_t> file,
                             std::uint64_t target_sample) {
  FlightReader probe(file);
  return probe.header().backend_fixed
             ? seek_impl<dsp::Q31Backend>(file, target_sample)
             : seek_impl<dsp::DoubleBackend>(file, target_sample);
}

FlightStateReport flight_state_at(std::span<const std::uint8_t> file,
                                  std::uint64_t target_sample,
                                  std::vector<std::uint8_t>& state_out) {
  FlightReader probe(file);
  return probe.header().backend_fixed
             ? state_at_impl<dsp::Q31Backend>(file, target_sample, state_out)
             : state_at_impl<dsp::DoubleBackend>(file, target_sample, state_out);
}

FlightCompareReport flight_compare(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b) {
  FlightCompareReport rep;
  FlightReader ra(a), rb(b);
  if (ra.header().fs != rb.header().fs ||
      ra.header().start_samples != rb.header().start_samples) {
    rep.first_input_mismatch = 0;
    return rep;
  }

  std::vector<std::pair<std::uint64_t, std::span<const std::uint8_t>>> cka, ckb;
  FlightReader::Event ea, eb;
  bool done = false;
  while (!done) {
    const bool ga = next_output_event(ra, ea, cka);
    const bool gb = next_output_event(rb, eb, ckb);
    if (!ga || !gb) {
      if (ga != gb && rep.first_input_mismatch < 0)
        rep.first_input_mismatch = static_cast<std::int64_t>(rep.chunks_compared);
      break;
    }
    if (ea.kind != eb.kind) {
      if (rep.first_input_mismatch < 0)
        rep.first_input_mismatch = static_cast<std::int64_t>(rep.chunks_compared);
      break;
    }
    if (ea.kind == FlightReader::EventKind::Chunk) {
      const bool inputs_same =
          ea.ecg.size() == eb.ecg.size() &&
          std::memcmp(ea.ecg.data(), eb.ecg.data(),
                      ea.ecg.size() * sizeof(double)) == 0 &&
          std::memcmp(ea.z.data(), eb.z.data(),
                      ea.z.size() * sizeof(double)) == 0;
      if (!inputs_same && rep.first_input_mismatch < 0)
        rep.first_input_mismatch = static_cast<std::int64_t>(ea.chunk_index);
      const bool beats_same = ea.beat_bytes.size() == eb.beat_bytes.size() &&
                              std::equal(ea.beat_bytes.begin(), ea.beat_bytes.end(),
                                         eb.beat_bytes.begin());
      if (!beats_same && rep.first_divergent_chunk < 0)
        rep.first_divergent_chunk = static_cast<std::int64_t>(ea.chunk_index);
      ++rep.chunks_compared;
    } else {  // End
      if (ea.finished == eb.finished) {
        rep.tail_match = ea.beat_bytes.size() == eb.beat_bytes.size() &&
                         std::equal(ea.beat_bytes.begin(), ea.beat_bytes.end(),
                                    eb.beat_bytes.begin());
      } else {
        rep.tail_match = false;
      }
      rep.summary_match = summaries_identical(ea.summary, eb.summary);
      done = true;
    }
  }

  // Checkpoints are compared only where both recordings captured the
  // same position (cadences may differ between the two runs).
  std::int64_t matched = -1;
  for (const auto& [sa, blob_a] : cka) {
    for (const auto& [sb, blob_b] : ckb) {
      if (sa != sb) continue;
      ++matched;
      const bool same = blob_a.size() == blob_b.size() &&
                        std::equal(blob_a.begin(), blob_a.end(), blob_b.begin());
      if (!same && rep.first_divergent_checkpoint < 0)
        rep.first_divergent_checkpoint = matched;
      break;
    }
  }

  rep.inputs_identical = rep.first_input_mismatch < 0;
  rep.outputs_identical = rep.first_divergent_chunk < 0 &&
                          rep.first_divergent_checkpoint < 0 &&
                          rep.summary_match && rep.tail_match;
  return rep;
}

FlightProbe probe_flight(std::span<const std::uint8_t> file) noexcept {
#if defined(ICGKIT_NO_EXCEPTIONS)
  // The flight recorder is a hosted-tools subsystem; it is not compiled
  // into the firmware profile, where refusal happens at probe_checkpoint.
  (void)file;
  return {};
#else
  FlightProbe p;
  try {
    FlightReader rd(file);
    p.header = rd.header();
    FlightReader::Event ev;
    std::uint64_t pos = rd.header().start_samples;
    std::uint64_t ckpts = 0;
    while (rd.next(ev)) {
      switch (ev.kind) {
        case FlightReader::EventKind::Checkpoint:
          ++ckpts;
          break;
        case FlightReader::EventKind::Chunk:
          ++p.chunks;
          pos += ev.ecg.size();
          p.beats += ev.beat_bytes.size() / beat_record_bytes();
          break;
        case FlightReader::EventKind::End:
          p.has_end = true;
          p.finished = ev.finished;
          p.beats += ev.beat_bytes.size() / beat_record_bytes();
          pos = ev.samples;
          break;
      }
    }
    p.checkpoints = ckpts > 0 ? ckpts - 1 : 0;  // exclude the initial one
    p.samples = pos;
    p.valid = true;
  } catch (...) {
    p = FlightProbe{};
  }
  return p;
#endif
}

} // namespace icgkit::core
