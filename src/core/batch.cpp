#include "core/batch.h"

#include <stdexcept>
#include <string>

namespace icgkit::core {

// The two supported lane counts, compiled once (the header declares the
// matching extern templates). W=4 is one AVX2 register per LaneVec, W=8
// is one AVX-512 register or two AVX2 ops — both lower to SSE2/NEON
// pairs on narrower targets.
template class SessionBatch<4>;
template class SessionBatch<8>;

bool session_batch_width_supported(std::size_t width) {
  return width == 4 || width == 8;
}

std::unique_ptr<SessionBatchBase> make_session_batch(std::size_t width,
                                                     dsp::SampleRate fs,
                                                     const PipelineConfig& cfg,
                                                     double window_s) {
  switch (width) {
    case 4:
      return std::make_unique<SessionBatch<4>>(fs, cfg, window_s);
    case 8:
      return std::make_unique<SessionBatch<8>>(fs, cfg, window_s);
    default:
      throw std::invalid_argument("make_session_batch: width must be 4 or 8 (got " +
                                  std::to_string(width) + ")");
  }
}

} // namespace icgkit::core
