#include "core/quality.h"

#include <algorithm>
#include <cstdio>

namespace icgkit::core {

BeatFlaw assess_beat(const BeatDelineation& beat, double rr_s, dsp::SampleRate fs,
                     const QualityConfig& cfg) {
  BeatFlaw flaws = BeatFlaw::None;
  if (!beat.valid) return BeatFlaw::InvalidDelineation;

  const double pep = static_cast<double>(beat.b - beat.r) / fs;
  const double lvet = static_cast<double>(beat.x - beat.b) / fs;

  if (pep < cfg.min_pep_s || pep > cfg.max_pep_s) flaws = flaws | BeatFlaw::PepOutOfRange;
  if (lvet < cfg.min_lvet_s || lvet > cfg.max_lvet_s)
    flaws = flaws | BeatFlaw::LvetOutOfRange;
  if (beat.c_amplitude < cfg.min_dzdt || beat.c_amplitude > cfg.max_dzdt)
    flaws = flaws | BeatFlaw::AmplitudeOutOfRange;
  if (rr_s < cfg.min_rr_s || rr_s > cfg.max_rr_s) flaws = flaws | BeatFlaw::RrOutOfRange;
  return flaws;
}

BeatFlaw assess_signal(const SignalQuality& q, const QualityConfig& cfg) {
  BeatFlaw flaws = BeatFlaw::None;
  if (q.snr_db < cfg.min_snr_db) flaws = flaws | BeatFlaw::LowSnr;
  if (q.saturation_fraction > cfg.max_saturation_fraction)
    flaws = flaws | BeatFlaw::Saturated;
  if (q.flatline_fraction > cfg.max_flatline_fraction)
    flaws = flaws | BeatFlaw::Flatline;
  return flaws;
}

std::string describe_flaws(BeatFlaw flaws) {
  if (flaws == BeatFlaw::None) return "ok";
  std::string out;
  auto append = [&](const char* name) {
    if (!out.empty()) out += '|';
    out += name;
  };
  if (has_flaw(flaws, BeatFlaw::InvalidDelineation)) append("invalid-delineation");
  if (has_flaw(flaws, BeatFlaw::PepOutOfRange)) append("pep-range");
  if (has_flaw(flaws, BeatFlaw::LvetOutOfRange)) append("lvet-range");
  if (has_flaw(flaws, BeatFlaw::AmplitudeOutOfRange)) append("amplitude-range");
  if (has_flaw(flaws, BeatFlaw::RrOutOfRange)) append("rr-range");
  if (has_flaw(flaws, BeatFlaw::LowSnr)) append("low-snr");
  if (has_flaw(flaws, BeatFlaw::Saturated)) append("saturated");
  if (has_flaw(flaws, BeatFlaw::Flatline)) append("flatline");
  return out;
}

void QualitySummary::tally(BeatFlaw flaws, const SignalQuality& q, bool snr_measured) {
  ++beats;
  if (snr_measured) {
    if (snr_beats == 0 || q.snr_db < min_snr_db) min_snr_db = q.snr_db;
    ++snr_beats;
    sum_snr_db += q.snr_db;
  }
  if (flaws == BeatFlaw::None) {
    ++usable;
    return;
  }
  for (std::size_t bit = 0; bit < kBeatFlawCount; ++bit)
    if (has_flaw(flaws, static_cast<BeatFlaw>(std::uint32_t{1} << bit))) ++flaw_counts[bit];
}

void QualitySummary::merge(const QualitySummary& other) {
  if (other.snr_beats > 0 && (snr_beats == 0 || other.min_snr_db < min_snr_db))
    min_snr_db = other.min_snr_db;
  beats += other.beats;
  snr_beats += other.snr_beats;
  usable += other.usable;
  for (std::size_t i = 0; i < kBeatFlawCount; ++i) flaw_counts[i] += other.flaw_counts[i];
  ecg_dropouts += other.ecg_dropouts;
  z_dropouts += other.z_dropouts;
  detector_resets += other.detector_resets;
  ensemble_folds_skipped += other.ensemble_folds_skipped;
  sum_snr_db += other.sum_snr_db;
}

std::string describe_summary(const QualitySummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%llu beats, %.0f%% usable, mean SNR %.1f dB, gaps ecg/z %llu/%llu, "
                "resets %llu",
                static_cast<unsigned long long>(s.beats), 100.0 * s.usable_fraction(),
                s.mean_snr_db(), static_cast<unsigned long long>(s.ecg_dropouts),
                static_cast<unsigned long long>(s.z_dropouts),
                static_cast<unsigned long long>(s.detector_resets));
  return buf;
}

} // namespace icgkit::core
