#include "core/quality.h"

namespace icgkit::core {

BeatFlaw assess_beat(const BeatDelineation& beat, double rr_s, dsp::SampleRate fs,
                     const QualityConfig& cfg) {
  BeatFlaw flaws = BeatFlaw::None;
  if (!beat.valid) return BeatFlaw::InvalidDelineation;

  const double pep = static_cast<double>(beat.b - beat.r) / fs;
  const double lvet = static_cast<double>(beat.x - beat.b) / fs;

  if (pep < cfg.min_pep_s || pep > cfg.max_pep_s) flaws = flaws | BeatFlaw::PepOutOfRange;
  if (lvet < cfg.min_lvet_s || lvet > cfg.max_lvet_s)
    flaws = flaws | BeatFlaw::LvetOutOfRange;
  if (beat.c_amplitude < cfg.min_dzdt || beat.c_amplitude > cfg.max_dzdt)
    flaws = flaws | BeatFlaw::AmplitudeOutOfRange;
  if (rr_s < cfg.min_rr_s || rr_s > cfg.max_rr_s) flaws = flaws | BeatFlaw::RrOutOfRange;
  return flaws;
}

std::string describe_flaws(BeatFlaw flaws) {
  if (flaws == BeatFlaw::None) return "ok";
  std::string out;
  auto append = [&](const char* name) {
    if (!out.empty()) out += '|';
    out += name;
  };
  if (has_flaw(flaws, BeatFlaw::InvalidDelineation)) append("invalid-delineation");
  if (has_flaw(flaws, BeatFlaw::PepOutOfRange)) append("pep-range");
  if (has_flaw(flaws, BeatFlaw::LvetOutOfRange)) append("lvet-range");
  if (has_flaw(flaws, BeatFlaw::AmplitudeOutOfRange)) append("amplitude-range");
  if (has_flaw(flaws, BeatFlaw::RrOutOfRange)) append("rr-range");
  return out;
}

} // namespace icgkit::core
