// ICG conditioning (Section IV-A.2 of the paper).
//
// The ICG is obtained from the impedance trace as ICG = -dZ/dt, then
// cleaned with a zero-phase low-pass Butterworth at 20 Hz: the paper
// found no significant spectral content above 20 Hz, so everything higher
// is treated as noise. Zero-phase application is mandatory because B/C/X
// are timing features (any group delay would bias PEP/LVET).
#pragma once

#include "dsp/biquad.h"
#include "dsp/types.h"

namespace icgkit::core {

struct IcgFilterConfig {
  std::size_t order = 4;     ///< poles of the causal prototype (doubled by filtfilt)
  double cutoff_hz = 20.0;   ///< the paper's spectral-analysis-derived cut-off
  /// Optional zero-phase high-pass for respiratory/motion baseline
  /// suppression (0 disables). The paper's Section II identifies
  /// respiration (0.04-2 Hz) and motion (0.1-10 Hz) as the dominant ICG
  /// artifacts and cites wavelet-based suppression as the established
  /// remedy; a 0.8 Hz zero-phase high-pass is the equivalent linear
  /// stage and markedly reduces the B-point bias on touch recordings
  /// (ablated in the delineation noise sweep tests).
  double highpass_hz = 0.8;
  std::size_t highpass_order = 2;
};

class IcgFilter {
 public:
  explicit IcgFilter(dsp::SampleRate fs, const IcgFilterConfig& cfg = {});

  /// Zero-phase low-pass over an ICG segment.
  [[nodiscard]] dsp::Signal apply(dsp::SignalView icg) const;

  [[nodiscard]] const dsp::SosFilter& filter() const { return lp_; }
  [[nodiscard]] dsp::SampleRate sample_rate() const { return fs_; }

 private:
  dsp::SampleRate fs_;
  dsp::SosFilter lp_;
  bool has_hp_ = false;
  dsp::SosFilter hp_;
};

/// ICG = -dZ/dt from a (possibly raw) impedance trace, in Ohm/s.
dsp::Signal icg_from_impedance(dsp::SignalView z_ohm, dsp::SampleRate fs);

} // namespace icgkit::core
