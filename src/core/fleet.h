// Multi-session fleet engine: thousands of independent
// StreamingBeatPipeline sessions on one host.
//
// The paper's firmware serves one wearer; the ROADMAP north star is a
// backend serving millions of streams. This subsystem is the host-side
// concurrency layer for that: a SessionManager owns N sessions keyed by
// id and shards them across a fixed pool of worker threads, round-robin
// by id (worker = id % workers). Because a session lives on exactly one
// worker and its chunks are processed in submission order, every
// session's hot path stays single-threaded and lock-free — per-session
// output is byte-identical whatever the worker count, which is the
// determinism contract the fleet tests pin down.
//
// Threading model (strict, by construction):
//   - ONE pilot thread calls add_session / try_submit / finish_session /
//     poll / close. All cross-thread channels are SPSC queues whose
//     producer/consumer roles follow from that: pilot -> worker for work
//     items, worker -> pilot for completed beats.
//   - Workers never touch the session table, only the Session* carried
//     by their work items.
//
// Memory pooling (zero steady-state allocation on the hot path):
//   - each session pre-sizes its StreamingBeatPipeline (ring buffers,
//     delineation scratch) at add_session time;
//   - submitted chunks are copied into a per-session slab of
//     chunk_slots_per_session fixed slots, recycled in FIFO order — the
//     producer claims slot (submitted % slots) only when
//     submitted - completed < slots, the worker releases it by bumping
//     `completed` after the push;
//   - completed beats travel by value (BeatRecord is POD) through
//     pre-sized result queues.
//
// Backpressure is explicit and bounded end to end: no free chunk slot or
// a full work queue fails try_submit (the pilot drains results and
// retries); a full result queue parks the worker until the pilot polls.
//
// Elastic rebalancing (core::Checkpoint subsystem): a session is no
// longer pinned for life to the worker that created it. migrate()
// checkpoints the session's full engine state on its current worker,
// hands the blob off, and restores it on the target worker, after which
// every subsequent chunk is processed there — with byte-identical
// per-session output to the never-migrated run, at any cut point. The
// control messages ride the existing SPSC work queues (a CheckpointOut
// item to the source, a RestoreIn item to the target); the blob itself
// lives in the session's pilot-owned buffer, published source -> pilot
// by an acquire/release flag and pilot -> target through the target's
// work queue, so every handoff has a happens-before edge (the TSan CI
// entry runs the migration tests to keep it that way).
#pragma once

#include "core/batch.h"
#include "core/flight_recorder.h"
#include "core/pipeline.h"
#include "core/spsc_queue.h"
#include "dsp/types.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace icgkit::core {

struct FleetConfig {
  std::size_t workers = 1;
  /// Largest chunk (samples) a single submit may carry; sizes the slab slots.
  std::size_t max_chunk = 256;
  /// In-flight chunks per session (slab slots).
  std::size_t chunk_slots_per_session = 4;
  /// Work items per worker queue.
  std::size_t submit_queue_capacity = 1024;
  /// Completed beats per worker queue.
  std::size_t result_queue_capacity = 8192;
  /// Per-worker per-push latency log entries (0 disables recording).
  std::size_t latency_log_capacity = 1 << 16;
  /// Per-session look-back window, as in StreamingBeatPipeline.
  double window_s = 12.0;
  /// SIMD batch mode (core::SessionBatch): 0 (the default) auto-selects
  /// the widest lockstep width this build's ISA runs without register
  /// spills — 4 on plain AVX2, 8 on AVX-512 or NEON, scalar on builds
  /// whose lane vector lowers to SSE2 or scalar code (see
  /// dsp::default_batch_width; the chosen value is readable via
  /// SessionManager::resolved_batch_width). 1 forces every session onto
  /// its own scalar engine; 4 or 8 makes start() group that many
  /// same-worker sessions into lockstep SIMD batches. Per-session output
  /// is byte-identical either way (the batch identity contract); batching
  /// only changes throughput. A worker advances a batch when every lane
  /// has a pending chunk of the same length, stashing early arrivals (one
  /// slab's worth per lane); a group whose lanes diverge — a finish or
  /// migration on one lane, mismatched chunk lengths, a stash overflow —
  /// is dissolved back to scalar engines via the checkpoint format and
  /// stays scalar. Sessions left over after grouping (count % width, or
  /// added after start()) run scalar as before.
  std::size_t batch_width = 0;
  PipelineConfig pipeline{};
};

/// One completed beat, tagged with the session that produced it — or,
/// when end_of_session is set, the terminal record a finished session
/// emits exactly once, after its tail beats: `beat` is default-valued
/// and `session_summary` carries the session's QualitySummary (beats,
/// usable fraction, per-flaw counts, contact gaps, recovery resets).
/// Consumers that only want beats skip end_of_session records.
struct FleetBeat {
  std::uint32_t session = 0;
  BeatRecord beat{};
  bool end_of_session = false;
  QualitySummary session_summary{};  ///< valid when end_of_session
};

/// Per-worker counters, valid to read after join().
struct FleetWorkerStats {
  std::uint64_t chunks = 0;
  std::uint64_t samples = 0;
  std::uint64_t beats = 0;
  std::vector<double> push_latency_us;  ///< first latency_log_capacity pushes
};

class SessionManager {
 public:
  SessionManager(dsp::SampleRate fs, const FleetConfig& cfg = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a new session and pre-allocates everything it will ever
  /// need (pipeline state, chunk slab, beat scratch). Returns its id.
  /// Pilot thread only; legal before or after start().
  std::uint32_t add_session();

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// The concrete lockstep width this manager runs: what
  /// FleetConfig::batch_width = 0 resolved to for this build's ISA,
  /// or the explicitly configured value otherwise. Always 1, 4 or 8.
  [[nodiscard]] std::size_t resolved_batch_width() const { return cfg_.batch_width; }

  /// Spawns the worker pool. Call once.
  void start();

  /// Copies one synchronized chunk into the session's slab and hands it
  /// to the owning worker. Returns false when backpressured (no free
  /// slot or full work queue) — drain with poll() and retry. Chunks are
  /// processed strictly in submission order per session.
  bool try_submit(std::uint32_t session, dsp::SignalView ecg_mv, dsp::SignalView z_ohm);

  /// Blocking submit for callers with a separate drain loop or enough
  /// result-queue headroom: spins on try_submit, appending any beats
  /// drained while waiting to `sink` so the wait can always make
  /// progress.
  void submit(std::uint32_t session, dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
              std::vector<FleetBeat>& sink);

  /// Enqueues the end-of-stream flush for a session (emits its tail
  /// beats). The session accepts no further submits.
  bool try_finish_session(std::uint32_t session);
  void finish_session(std::uint32_t session, std::vector<FleetBeat>& sink);

  /// Moves a live session to another worker: checkpoints the engine on
  /// its current worker (after every chunk submitted so far), transfers
  /// the blob, and restores on `target_worker`; subsequent submits are
  /// processed there. Blocking control-plane call (drains results into
  /// `sink` while it waits), pilot thread only, legal any time between
  /// start() and close() for an unfinished session. Guarantees: chunks
  /// are never reordered or dropped across the move, the session's beat
  /// stream (including its eventual end-of-session QualitySummary) is
  /// byte-identical to the never-migrated run, and `sink` holds every
  /// pre-migration beat of the session when the call returns.
  /// Migrating a session onto the worker it already occupies is legal
  /// and still performs the full checkpoint/restore round trip.
  void migrate(std::uint32_t session, std::uint32_t target_worker,
               std::vector<FleetBeat>& sink);

  /// The worker currently owning a session's engine (pilot thread only).
  [[nodiscard]] std::uint32_t session_worker(std::uint32_t session) const;

  /// Worker with the fewest resident sessions (pilot thread only) — the
  /// natural migrate() target when draining or rebalancing.
  [[nodiscard]] std::uint32_t least_loaded_worker() const;

  /// Completed migrate() calls so far.
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

  /// Starts flight-recording a live session into `sink` (see
  /// core/flight_recorder.h): the owning worker writes the file header
  /// plus an initial checkpoint at the exact cut point (serialized
  /// behind every chunk submitted so far), then taps each subsequent
  /// chunk purely observationally — the recorder never feeds the
  /// engine, so recording cannot perturb the session's beat stream
  /// (pinned by the recorded-vs-twin fleet test). Blocking
  /// control-plane call in the migrate() mold: drains results into
  /// `drained` while waiting for the worker's acknowledgement; when it
  /// returns, the header and initial checkpoint are in the sink. In
  /// batch mode the session's lockstep group is dissolved first (a
  /// recorded session runs scalar). `rcfg` carries the checkpoint
  /// cadence and seed provenance; its window_s is overridden with the
  /// fleet's configured window. The recorder rides the session across
  /// migrate() — the recording continues seamlessly on the new worker.
  void start_recording(std::uint32_t session, std::unique_ptr<RecorderSink> sink,
                       std::vector<FleetBeat>& drained,
                       FlightRecorderConfig rcfg = {});

  /// Cuts a live recording mid-stream: the owning worker writes the
  /// FINI trailer (finished=0, summary-so-far), the sink is flushed,
  /// and ownership of the sink returns to the caller — dropping it
  /// closes a file sink at the cut; keeping it lets the pilot read a
  /// BufferRecorderSink's bytes. The file replays up to the cut.
  /// Unnecessary for a session that reaches finish_session() while
  /// recording — its file is finalized with the finish() tail beats
  /// automatically (the sink is then released when the manager is
  /// destroyed). Blocking, pilot thread only; illegal once the session
  /// finished.
  std::unique_ptr<RecorderSink> stop_recording(std::uint32_t session,
                                               std::vector<FleetBeat>& drained);

  /// True while the session has an active recording the pilot has not
  /// stopped (stays true after a finish_session finalized the file).
  [[nodiscard]] bool recording(std::uint32_t session) const;

  /// Moves up to max_items completed beats into `out` (appended, not
  /// cleared). Pilot thread only. Returns the number moved.
  std::size_t poll(std::vector<FleetBeat>& out,
                   std::size_t max_items = static_cast<std::size_t>(-1));

  /// The canonical end-of-input sequence in one call: finishes every
  /// unfinished session, close()s the pool, polls into `sink` until all
  /// submitted work is processed, join()s the workers, and performs the
  /// final poll. After it returns, `sink` holds every remaining beat.
  void run_to_completion(std::vector<FleetBeat>& sink);

  /// Signals end of input: workers exit once their queues drain. Safe to
  /// call once after the last submit/finish_session. Drains results into
  /// an internal overflow (re-pollable) if it must wait for queue space.
  void close();

  /// Waits for all workers to exit (close() first), draining results
  /// while waiting so backpressure-parked workers can finish. Everything
  /// drained or still queued remains pollable after join().
  void join();

  /// True once every submitted chunk has been processed.
  [[nodiscard]] bool idle() const;

  /// Per-worker counters; stable after join().
  [[nodiscard]] const std::vector<FleetWorkerStats>& worker_stats() const;

  /// One session's running QualitySummary, read from its engine (or,
  /// while the session is packed into a SIMD batch, from its lane of the
  /// batch). The state lives on its owning worker, so call this only
  /// when that worker is quiescent: after join() (in batch mode, only
  /// after join() or after the session finished — a batch may still be
  /// draining stashed chunks at idle()). The authoritative end-of-stream
  /// snapshot is the end_of_session FleetBeat the finish emits.
  [[nodiscard]] const QualitySummary& session_quality(std::uint32_t session) const;

  /// Sum of every session's QualitySummary (same caveat as
  /// session_quality: meaningful after join() or at idle()).
  [[nodiscard]] QualitySummary fleet_quality() const;

  /// Running totals, safe to read from any thread while workers run
  /// (relaxed atomic counters — a live dashboard surface).
  [[nodiscard]] std::uint64_t total_samples() const;
  [[nodiscard]] std::uint64_t total_beats() const;

 private:
  /// What a work item asks the owning worker to do with the session.
  enum class SessionOp : std::uint8_t {
    Chunk,          ///< push one slab chunk through the engine
    Finish,         ///< end-of-stream flush + end-of-session record
    CheckpointOut,  ///< serialize the engine into the migration blob
    RestoreIn,      ///< deserialize the migration blob into the engine
    RecordStart,    ///< open a flight recorder over the installed sink
    RecordStop,     ///< finalize the flight recorder mid-stream
  };

  struct BatchGroup;

  struct Session {
    Session(std::uint32_t id, dsp::SampleRate fs, const FleetConfig& cfg);

    std::uint32_t id;
    StreamingBeatPipeline engine;
    std::vector<dsp::Sample> slab;      ///< slots * max_chunk * 2 samples
    std::uint64_t submitted = 0;        ///< pilot side
    std::atomic<std::uint64_t> completed{0};  ///< worker side
    bool finished = false;              ///< pilot side
    std::uint32_t worker = 0;           ///< pilot side: current owner
    std::vector<BeatRecord> beat_scratch;     ///< worker side, reused
    /// Migration handoff: written by the source worker (CheckpointOut),
    /// published to the pilot by checkpoint_ready, then to the target
    /// worker through its work queue (RestoreIn). Capacity is reused
    /// across migrations.
    std::vector<std::uint8_t> migration_blob;
    std::atomic<bool> checkpoint_ready{false};
    /// Flight recording: the sink is installed by the pilot before the
    /// RecordStart op; the recorder is created, driven and destroyed
    /// exclusively by the owning worker (the work-queue handoffs give it
    /// the same happens-before edges as the engine, so it rides the
    /// session across migrations). Declared sink-before-recorder so the
    /// recorder is destroyed first. record_ack is the worker -> pilot
    /// acknowledgement for RecordStart/RecordStop, released only after
    /// the corresponding file sections are in the sink.
    std::unique_ptr<RecorderSink> recorder_sink;
    std::unique_ptr<FlightRecorder> recorder;
    FlightRecorderConfig recorder_cfg;  ///< pilot-written before RecordStart
    std::atomic<bool> record_ack{false};
    bool is_recording = false;  ///< pilot side
    /// Batch mode: the lockstep group this session rides in, or nullptr
    /// when it runs its own scalar engine. Set by start(), cleared by the
    /// owning worker when the group dissolves (while the session is
    /// packed, `engine` is stale — the live state is group lane `lane`).
    BatchGroup* group = nullptr;
    std::uint32_t lane = 0;
  };

  /// One lockstep SIMD batch of batch_width same-worker sessions (batch
  /// mode only). Owned by the manager, driven exclusively by the owning
  /// worker after start(). Each lane has a FIFO chunk stash (slab-sized)
  /// absorbing arrival skew: the batch advances only when every lane
  /// holds a chunk of the same length.
  struct BatchGroup {
    std::vector<Session*> lanes;
    std::unique_ptr<SessionBatchBase> batch;
    bool packed = false;    ///< worker side after start(); false = dissolved
    std::size_t slots = 0;      ///< stash depth per lane (= chunk slots)
    std::size_t max_chunk = 0;
    std::vector<dsp::Sample> stash;          ///< lanes * slots * max_chunk * 2
    std::vector<std::uint32_t> stash_len;    ///< lanes * slots
    std::vector<std::size_t> head, count;    ///< per-lane FIFO state
    std::vector<std::vector<BeatRecord>> lane_beats;       ///< reused
    std::vector<std::vector<std::uint8_t>> lane_blobs;     ///< pack/unpack reuse
    std::vector<const dsp::Sample*> ecg_ptrs, z_ptrs;      ///< reused
  };

  /// session == nullptr is the pool-shutdown sentinel.
  struct WorkItem {
    Session* session = nullptr;
    std::uint32_t len = 0;
    SessionOp op = SessionOp::Chunk;
  };

  struct Worker {
    explicit Worker(const FleetConfig& cfg);
    SpscQueue<WorkItem> in;
    SpscQueue<FleetBeat> out;
    /// Batch groups homed on this worker (filled by start(), before the
    /// thread spawns); dissolved on shutdown so stashed chunks flush.
    std::vector<BatchGroup*> groups;
    /// Counters are atomic (relaxed) so the pilot can read live totals
    /// while the worker runs; the latency log is worker-only until
    /// join().
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> beats{0};
    std::vector<double> push_latency_us;
    std::thread thread;
  };

  [[nodiscard]] Worker& worker_of(const Session& s) { return *workers_[s.worker]; }
  bool enqueue_item(Session& s, dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                    SessionOp op);
  std::size_t drain_queues(std::vector<FleetBeat>& out, std::size_t max_items);
  void worker_loop(Worker& w);
  // Batch mode (worker side unless noted).
  void form_batch_groups();  ///< pilot, from start()
  void stash_chunk(BatchGroup& g, Session& s, const WorkItem& item, Worker& w);
  void process_batch_ready(BatchGroup& g, Worker& w);
  void dissolve_group(BatchGroup& g, Worker& w);
  static void emit_beats(Session& s, Worker& w, const std::vector<BeatRecord>& beats);

  dsp::SampleRate fs_;
  FleetConfig cfg_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<BatchGroup>> groups_;  ///< batch mode only
  std::atomic<std::size_t> active_workers_{0};
  /// Results drained while close()/join() waited; served by poll() ahead
  /// of the live queues to preserve per-session order.
  std::vector<FleetBeat> overflow_;
  std::size_t overflow_pos_ = 0;
  mutable std::vector<FleetWorkerStats> stats_cache_;
  std::uint64_t migrations_ = 0;  ///< pilot side
  bool started_ = false;
  bool closed_ = false;
  bool joined_ = false;
};

/// The subsystem's working name in prose and benches.
using Fleet = SessionManager;

} // namespace icgkit::core
