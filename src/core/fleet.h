// Multi-session fleet engine: thousands of independent
// StreamingBeatPipeline sessions on one host.
//
// The paper's firmware serves one wearer; the ROADMAP north star is a
// backend serving millions of streams. This subsystem is the host-side
// concurrency layer for that: a SessionManager owns N sessions and
// shards them across a fixed pool of worker threads. Because a session
// lives on exactly one worker and its chunks are processed in
// submission order, every session's hot path stays single-threaded and
// lock-free — per-session output is byte-identical whatever the worker
// count, which is the determinism contract the fleet tests pin down.
//
// Session-facing API (PR 10): `open()` returns a `SessionHandle`, an
// RAII façade whose verb set matches the C ABI
// (open/push/poll_beat/finish/quality). Placement is load-aware —
// open() homes the session on `least_loaded_worker()` instead of the
// historical static `id % workers` (for sequential opens on a fresh
// fleet the two are identical, which is why the determinism fixtures
// did not move). The raw-id methods remain as thin [[deprecated]]
// wrappers for one PR; new code should not touch ids.
//
// Threading model (strict, by construction):
//   - ONE pilot thread calls open / push / finish / poll / close. All
//     cross-thread channels are SPSC queues whose producer/consumer
//     roles follow from that: pilot -> worker for work items, worker ->
//     pilot for completed beats.
//   - Workers never touch the session table, only the Session* carried
//     by their work items.
//
// Memory pooling (zero steady-state allocation on the hot path):
//   - each session pre-sizes its StreamingBeatPipeline (ring buffers,
//     delineation scratch) at open time;
//   - submitted chunks are copied into a per-session slab of
//     chunk_slots_per_session fixed slots, recycled in FIFO order — the
//     producer claims slot (submitted % slots) only when
//     submitted - completed < slots, the worker releases it by bumping
//     `completed` after the push;
//   - completed beats travel by value (BeatRecord is POD) through
//     pre-sized result queues.
//
// Backpressure is explicit and bounded end to end: no free chunk slot or
// a full work queue fails try_push (the pilot drains results and
// retries); a full result queue parks the worker until the pilot polls.
//
// Elastic rebalancing (core::Checkpoint subsystem): a session is no
// longer pinned for life to the worker that created it.
// SessionHandle::migrate_to() checkpoints the session's full engine
// state on its current worker, hands the blob off, and restores it on
// the target worker, after which every subsequent chunk is processed
// there — with byte-identical per-session output to the never-migrated
// run, at any cut point. The control messages ride the existing SPSC
// work queues (a CheckpointOut item to the source, a RestoreIn item to
// the target); the blob itself lives in the session's pilot-owned
// buffer, published source -> pilot by an acquire/release flag and
// pilot -> target through the target's work queue, so every handoff has
// a happens-before edge (the TSan CI entry runs the migration tests to
// keep it that way). `worker_queue_depths()` exposes the live
// submitted-minus-completed depth per worker — the load signal the
// network server's periodic rebalancer feeds back into migrate_to().
#pragma once

#include "core/batch.h"
#include "core/flight_recorder.h"
#include "core/pipeline.h"
#include "core/spsc_queue.h"
#include "dsp/types.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace icgkit::core {

class SessionHandle;

struct FleetConfig {
  std::size_t workers = 1;
  /// Largest chunk (samples) a single submit may carry; sizes the slab slots.
  std::size_t max_chunk = 256;
  /// In-flight chunks per session (slab slots).
  std::size_t chunk_slots_per_session = 4;
  /// Work items per worker queue.
  std::size_t submit_queue_capacity = 1024;
  /// Completed beats per worker queue.
  std::size_t result_queue_capacity = 8192;
  /// Per-worker per-push latency log entries (0 disables recording).
  std::size_t latency_log_capacity = 1 << 16;
  /// Per-session look-back window, as in StreamingBeatPipeline.
  double window_s = 12.0;
  /// SIMD batch mode (core::SessionBatch): 0 (the default) auto-selects
  /// the widest lockstep width this build's ISA runs without register
  /// spills — 4 on plain AVX2, 8 on AVX-512 or NEON, scalar on builds
  /// whose lane vector lowers to SSE2 or scalar code (see
  /// dsp::default_batch_width; the chosen value is readable via
  /// SessionManager::resolved_batch_width). 1 forces every session onto
  /// its own scalar engine; 4 or 8 makes start() group that many
  /// same-worker sessions into lockstep SIMD batches. Per-session output
  /// is byte-identical either way (the batch identity contract); batching
  /// only changes throughput. A worker advances a batch when every lane
  /// has a pending chunk of the same length, stashing early arrivals (one
  /// slab's worth per lane); a group whose lanes diverge — a finish or
  /// migration on one lane, mismatched chunk lengths, a stash overflow —
  /// is dissolved back to scalar engines via the checkpoint format and
  /// stays scalar. Sessions left over after grouping (count % width, or
  /// added after start()) run scalar as before.
  std::size_t batch_width = 0;
  PipelineConfig pipeline{};
};

/// One completed beat, tagged with the session that produced it — or,
/// when end_of_session is set, the terminal record a finished session
/// emits exactly once, after its tail beats: `beat` is default-valued
/// and `session_summary` carries the session's QualitySummary (beats,
/// usable fraction, per-flaw counts, contact gaps, recovery resets).
/// Consumers that only want beats skip end_of_session records.
struct FleetBeat {
  std::uint32_t session = 0;
  BeatRecord beat{};
  bool end_of_session = false;
  QualitySummary session_summary{};  ///< valid when end_of_session
};

/// Per-worker counters, valid to read after join().
struct FleetWorkerStats {
  std::uint64_t chunks = 0;
  std::uint64_t samples = 0;
  std::uint64_t beats = 0;
  std::vector<double> push_latency_us;  ///< first latency_log_capacity pushes
};

class SessionManager {
 public:
  SessionManager(dsp::SampleRate fs, const FleetConfig& cfg = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a new session and pre-allocates everything it will ever need
  /// (pipeline state, chunk slab, beat scratch), homing it on
  /// `least_loaded_worker()` — the load-aware placement that replaced
  /// static `id % workers`. For sequential opens on a fresh fleet the
  /// two policies pick identical workers (lowest index wins ties), so
  /// the cross-worker-count determinism fixtures hold unchanged.
  /// Returns the RAII façade; the handle's destructor finishes a
  /// still-streaming session (discarding its tail beats) unless the
  /// pool was already closed. Pilot thread only; legal before or after
  /// start().
  [[nodiscard]] SessionHandle open();

  /// open() with explicit placement (tests and repack tooling).
  [[nodiscard]] SessionHandle open_on(std::uint32_t worker);

  /// \deprecated Raw-id session registration, kept as a thin wrapper for
  /// one PR. Placement is the historical `id % workers`. Use open().
  [[deprecated("use SessionManager::open() and SessionHandle")]]
  std::uint32_t add_session() { return do_add_session(); }

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool closed() const { return closed_; }

  /// The concrete lockstep width this manager runs: what
  /// FleetConfig::batch_width = 0 resolved to for this build's ISA,
  /// or the explicitly configured value otherwise. Always 1, 4 or 8.
  [[nodiscard]] std::size_t resolved_batch_width() const { return cfg_.batch_width; }

  /// Spawns the worker pool. Call once.
  void start();

  /// \deprecated Use SessionHandle::try_push().
  [[deprecated("use SessionHandle::try_push()")]]
  bool try_submit(std::uint32_t session, dsp::SignalView ecg_mv, dsp::SignalView z_ohm) {
    return do_try_submit(session, ecg_mv, z_ohm);
  }

  /// \deprecated Use SessionHandle::push().
  [[deprecated("use SessionHandle::push()")]]
  void submit(std::uint32_t session, dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
              std::vector<FleetBeat>& sink) {
    do_submit(session, ecg_mv, z_ohm, sink);
  }

  /// \deprecated Use SessionHandle::try_finish().
  [[deprecated("use SessionHandle::try_finish()")]]
  bool try_finish_session(std::uint32_t session) { return do_try_finish(session); }

  /// \deprecated Use SessionHandle::finish().
  [[deprecated("use SessionHandle::finish()")]]
  void finish_session(std::uint32_t session, std::vector<FleetBeat>& sink) {
    do_finish(session, sink);
  }

  /// \deprecated Use SessionHandle::migrate_to().
  [[deprecated("use SessionHandle::migrate_to()")]]
  void migrate(std::uint32_t session, std::uint32_t target_worker,
               std::vector<FleetBeat>& sink) {
    do_migrate(session, target_worker, sink);
  }

  /// \deprecated Use SessionHandle::worker().
  [[deprecated("use SessionHandle::worker()")]]
  std::uint32_t session_worker(std::uint32_t session) const {
    return do_session_worker(session);
  }

  /// Worker with the fewest resident unfinished sessions (pilot thread
  /// only) — open()'s placement policy and the natural migrate_to()
  /// target when draining or rebalancing. Ties break to the lowest
  /// worker index.
  [[nodiscard]] std::uint32_t least_loaded_worker() const;

  /// Live submitted-but-not-yet-completed work items per worker (pilot
  /// thread only; the workers' completed counters are read with acquire
  /// loads). This is the queue-depth signal the network server's
  /// periodic rebalancer uses to pick migration donors and targets.
  /// Appends nothing — `out` is assigned, its capacity reused.
  void worker_queue_depths(std::vector<std::size_t>& out) const;

  /// Resident unfinished sessions per worker (pilot thread only) — the
  /// static component of worker load, complementing the instantaneous
  /// worker_queue_depths().
  void worker_resident_sessions(std::vector<std::size_t>& out) const;

  /// Completed migrations so far (SessionHandle::migrate_to() calls).
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

  /// \deprecated Use SessionHandle::record_start().
  [[deprecated("use SessionHandle::record_start()")]]
  void start_recording(std::uint32_t session, std::unique_ptr<RecorderSink> sink,
                       std::vector<FleetBeat>& drained,
                       FlightRecorderConfig rcfg = {}) {
    do_start_recording(session, std::move(sink), drained, rcfg);
  }

  /// \deprecated Use SessionHandle::record_stop().
  [[deprecated("use SessionHandle::record_stop()")]]
  std::unique_ptr<RecorderSink> stop_recording(std::uint32_t session,
                                               std::vector<FleetBeat>& drained) {
    return do_stop_recording(session, drained);
  }

  /// \deprecated Use SessionHandle::recording().
  [[deprecated("use SessionHandle::recording()")]]
  bool recording(std::uint32_t session) const { return do_recording(session); }

  /// Moves up to max_items completed beats into `out` (appended, not
  /// cleared). Pilot thread only. Returns the number moved. This is the
  /// fan-in drain every blocking verb spins on; per-session delivery is
  /// SessionHandle::poll_beat() (the two may be mixed — each beat is
  /// delivered exactly once, through whichever path claims it first).
  std::size_t poll(std::vector<FleetBeat>& out,
                   std::size_t max_items = static_cast<std::size_t>(-1));

  /// The canonical end-of-input sequence in one call: finishes every
  /// unfinished session, close()s the pool, polls into `sink` until all
  /// submitted work is processed, join()s the workers, and performs the
  /// final poll. After it returns, `sink` holds every remaining beat.
  void run_to_completion(std::vector<FleetBeat>& sink);

  /// Signals end of input: workers exit once their queues drain. Safe to
  /// call once after the last submit/finish. Drains results into an
  /// internal overflow (re-pollable) if it must wait for queue space.
  void close();

  /// Waits for all workers to exit (close() first), draining results
  /// while waiting so backpressure-parked workers can finish. Everything
  /// drained or still queued remains pollable after join().
  void join();

  /// True once every submitted chunk has been processed.
  [[nodiscard]] bool idle() const;

  /// Per-worker counters; stable after join().
  [[nodiscard]] const std::vector<FleetWorkerStats>& worker_stats() const;

  /// \deprecated Use SessionHandle::quality().
  [[deprecated("use SessionHandle::quality()")]]
  const QualitySummary& session_quality(std::uint32_t session) const {
    return do_session_quality(session);
  }

  /// Sum of every session's QualitySummary (same caveat as
  /// SessionHandle::quality(): meaningful after join() or at idle()).
  [[nodiscard]] QualitySummary fleet_quality() const;

  /// Running totals, safe to read from any thread while workers run
  /// (relaxed atomic counters — a live dashboard surface).
  [[nodiscard]] std::uint64_t total_samples() const;
  [[nodiscard]] std::uint64_t total_beats() const;

 private:
  friend class SessionHandle;

  /// What a work item asks the owning worker to do with the session.
  enum class SessionOp : std::uint8_t {
    Chunk,          ///< push one slab chunk through the engine
    Finish,         ///< end-of-stream flush + end-of-session record
    CheckpointOut,  ///< serialize the engine into the migration blob
    RestoreIn,      ///< deserialize the migration blob into the engine
    RecordStart,    ///< open a flight recorder over the installed sink
    RecordStop,     ///< finalize the flight recorder mid-stream
  };

  struct BatchGroup;

  struct Session {
    Session(std::uint32_t id, std::uint32_t worker, dsp::SampleRate fs,
            const FleetConfig& cfg);

    std::uint32_t id;
    StreamingBeatPipeline engine;
    std::vector<dsp::Sample> slab;      ///< slots * max_chunk * 2 samples
    std::uint64_t submitted = 0;        ///< pilot side
    std::atomic<std::uint64_t> completed{0};  ///< worker side: all work items
    /// Worker side: Chunk items only. `completed` also counts control
    /// ops (checkpoint/restore/record start/stop), so it is the slab and
    /// queue bookkeeping counter; this one is the flow-control counter a
    /// CACK may expose — a migration must not inflate a client's ack.
    std::atomic<std::uint64_t> chunks_done{0};
    bool finished = false;              ///< pilot side
    std::uint32_t worker = 0;           ///< pilot side: current owner
    std::vector<BeatRecord> beat_scratch;     ///< worker side, reused
    /// Migration handoff: written by the source worker (CheckpointOut),
    /// published to the pilot by checkpoint_ready, then to the target
    /// worker through its work queue (RestoreIn). Capacity is reused
    /// across migrations.
    std::vector<std::uint8_t> migration_blob;
    std::atomic<bool> checkpoint_ready{false};
    /// Flight recording: the sink is installed by the pilot before the
    /// RecordStart op; the recorder is created, driven and destroyed
    /// exclusively by the owning worker (the work-queue handoffs give it
    /// the same happens-before edges as the engine, so it rides the
    /// session across migrations). Declared sink-before-recorder so the
    /// recorder is destroyed first. record_ack is the worker -> pilot
    /// acknowledgement for RecordStart/RecordStop, released only after
    /// the corresponding file sections are in the sink.
    std::unique_ptr<RecorderSink> recorder_sink;
    std::unique_ptr<FlightRecorder> recorder;
    FlightRecorderConfig recorder_cfg;  ///< pilot-written before RecordStart
    std::atomic<bool> record_ack{false};
    bool is_recording = false;  ///< pilot side
    /// Per-session delivery buffer for SessionHandle::poll_beat():
    /// beats drained from the worker queues are routed here when the
    /// pilot polls by session instead of by fleet. Pilot side only.
    std::vector<FleetBeat> inbox;
    std::size_t inbox_pos = 0;
    /// Batch mode: the lockstep group this session rides in, or nullptr
    /// when it runs its own scalar engine. Set by start(), cleared by the
    /// owning worker when the group dissolves (while the session is
    /// packed, `engine` is stale — the live state is group lane `lane`).
    BatchGroup* group = nullptr;
    std::uint32_t lane = 0;
  };

  /// One lockstep SIMD batch of batch_width same-worker sessions (batch
  /// mode only). Owned by the manager, driven exclusively by the owning
  /// worker after start(). Each lane has a FIFO chunk stash (slab-sized)
  /// absorbing arrival skew: the batch advances only when every lane
  /// holds a chunk of the same length.
  struct BatchGroup {
    std::vector<Session*> lanes;
    std::unique_ptr<SessionBatchBase> batch;
    bool packed = false;    ///< worker side after start(); false = dissolved
    std::size_t slots = 0;      ///< stash depth per lane (= chunk slots)
    std::size_t max_chunk = 0;
    std::vector<dsp::Sample> stash;          ///< lanes * slots * max_chunk * 2
    std::vector<std::uint32_t> stash_len;    ///< lanes * slots
    std::vector<std::size_t> head, count;    ///< per-lane FIFO state
    std::vector<std::vector<BeatRecord>> lane_beats;       ///< reused
    std::vector<std::vector<std::uint8_t>> lane_blobs;     ///< pack/unpack reuse
    std::vector<const dsp::Sample*> ecg_ptrs, z_ptrs;      ///< reused
  };

  /// session == nullptr is the pool-shutdown sentinel.
  struct WorkItem {
    Session* session = nullptr;
    std::uint32_t len = 0;
    SessionOp op = SessionOp::Chunk;
  };

  struct Worker {
    explicit Worker(const FleetConfig& cfg);
    SpscQueue<WorkItem> in;
    SpscQueue<FleetBeat> out;
    /// Batch groups homed on this worker (filled by start(), before the
    /// thread spawns); dissolved on shutdown so stashed chunks flush.
    std::vector<BatchGroup*> groups;
    /// Counters are atomic (relaxed) so the pilot can read live totals
    /// while the worker runs; the latency log is worker-only until
    /// join().
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> beats{0};
    std::vector<double> push_latency_us;
    std::thread thread;
  };

  // The real implementations behind both the SessionHandle verbs and
  // the deprecated raw-id wrappers (which must not call their warning-
  // bearing public twins).
  std::uint32_t do_add_session();
  std::uint32_t do_add_session_on(std::uint32_t worker);
  bool do_try_submit(std::uint32_t session, dsp::SignalView ecg_mv, dsp::SignalView z_ohm);
  void do_submit(std::uint32_t session, dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                 std::vector<FleetBeat>& sink);
  bool do_try_finish(std::uint32_t session);
  void do_finish(std::uint32_t session, std::vector<FleetBeat>& sink);
  void do_migrate(std::uint32_t session, std::uint32_t target_worker,
                  std::vector<FleetBeat>& sink);
  void do_start_recording(std::uint32_t session, std::unique_ptr<RecorderSink> sink,
                          std::vector<FleetBeat>& drained, FlightRecorderConfig rcfg);
  std::unique_ptr<RecorderSink> do_stop_recording(std::uint32_t session,
                                                  std::vector<FleetBeat>& drained);
  [[nodiscard]] bool do_recording(std::uint32_t session) const;
  [[nodiscard]] std::uint32_t do_session_worker(std::uint32_t session) const;
  [[nodiscard]] const QualitySummary& do_session_quality(std::uint32_t session) const;
  [[nodiscard]] bool do_session_finished(std::uint32_t session) const;
  [[nodiscard]] std::uint64_t do_session_processed(std::uint32_t session) const;
  bool do_poll_beat(std::uint32_t session, FleetBeat& out);

  [[nodiscard]] Worker& worker_of(const Session& s) { return *workers_[s.worker]; }
  Session& checked_session(std::uint32_t session);
  const Session& checked_session(std::uint32_t session) const;
  bool enqueue_item(Session& s, dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                    SessionOp op);
  std::size_t drain_queues(std::vector<FleetBeat>& out, std::size_t max_items);
  void worker_loop(Worker& w);
  // Batch mode (worker side unless noted).
  void form_batch_groups();  ///< pilot, from start()
  void stash_chunk(BatchGroup& g, Session& s, const WorkItem& item, Worker& w);
  void process_batch_ready(BatchGroup& g, Worker& w);
  void dissolve_group(BatchGroup& g, Worker& w);
  static void emit_beats(Session& s, Worker& w, const std::vector<BeatRecord>& beats);

  dsp::SampleRate fs_;
  FleetConfig cfg_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<BatchGroup>> groups_;  ///< batch mode only
  std::atomic<std::size_t> active_workers_{0};
  /// Results drained while close()/join() waited; served by poll() ahead
  /// of the live queues to preserve per-session order.
  std::vector<FleetBeat> overflow_;
  std::size_t overflow_pos_ = 0;
  /// Scratch for poll_beat()'s route-to-inbox drain (capacity reused).
  std::vector<FleetBeat> route_scratch_;
  mutable std::vector<FleetWorkerStats> stats_cache_;
  std::uint64_t migrations_ = 0;  ///< pilot side
  bool started_ = false;
  bool closed_ = false;
  bool joined_ = false;
};

/// RAII façade over one fleet session — the canonical session API since
/// PR 10, with the verb set the C ABI committed to: open (via
/// SessionManager::open()), push, poll_beat, finish, quality. A handle
/// is movable, not copyable; the pilot-thread-only discipline of
/// SessionManager applies to every verb. Destroying a handle whose
/// session is still streaming finishes it (tail beats are discarded),
/// unless the pool was already closed — so a scope exit can never leak
/// an unfinished session into close().
class SessionHandle {
 public:
  SessionHandle() = default;
  SessionHandle(SessionHandle&& o) noexcept : mgr_(o.mgr_), id_(o.id_) {
    o.mgr_ = nullptr;
  }
  SessionHandle& operator=(SessionHandle&& o) noexcept {
    if (this != &o) {
      reset();
      mgr_ = o.mgr_;
      id_ = o.id_;
      o.mgr_ = nullptr;
    }
    return *this;
  }
  SessionHandle(const SessionHandle&) = delete;
  SessionHandle& operator=(const SessionHandle&) = delete;
  ~SessionHandle() { reset(); }

  /// True when the handle refers to a session (default-constructed and
  /// moved-from handles are invalid; every verb below requires valid()).
  [[nodiscard]] bool valid() const { return mgr_ != nullptr; }
  explicit operator bool() const { return valid(); }

  /// The session's fleet id — stable for the session's lifetime, used
  /// in FleetBeat::session to route fan-in poll() results.
  [[nodiscard]] std::uint32_t id() const { return id_; }

  /// The worker currently owning the session's engine.
  [[nodiscard]] std::uint32_t worker() const { return mgr_->do_session_worker(id_); }

  /// True once finish()/try_finish() was accepted.
  [[nodiscard]] bool finished() const { return mgr_->do_session_finished(id_); }

  /// Chunks the owning worker has accepted and consumed for this
  /// session so far (acquire read of the worker's counter). Control
  /// ops — migration checkpoints/restores, recording start/stop — are
  /// deliberately not counted: this is the cumulative count the
  /// server's CACK records report, and clients window their sends
  /// against it, so it must advance once per submitted chunk, exactly.
  [[nodiscard]] std::uint64_t processed() const {
    return mgr_->do_session_processed(id_);
  }

  /// Copies one synchronized chunk into the session's slab and hands it
  /// to the owning worker. Returns false when backpressured (no free
  /// slot or full work queue) — drain with poll_beat()/poll() and
  /// retry. Chunks are processed strictly in submission order.
  bool try_push(dsp::SignalView ecg_mv, dsp::SignalView z_ohm) {
    return mgr_->do_try_submit(id_, ecg_mv, z_ohm);
  }

  /// Blocking push: spins on try_push, appending any beats drained
  /// while waiting to `sink` so the wait can always make progress.
  void push(dsp::SignalView ecg_mv, dsp::SignalView z_ohm, std::vector<FleetBeat>& sink) {
    mgr_->do_submit(id_, ecg_mv, z_ohm, sink);
  }

  /// Per-session delivery: moves this session's next completed beat (or
  /// its end_of_session terminal record) into `out`. Returns false when
  /// none is ready yet. Beats of *other* sessions drained while looking
  /// are parked in their sessions' inboxes, not lost — poll_beat and
  /// the fleet-level SessionManager::poll() deliver each beat exactly
  /// once, through whichever is called first.
  bool poll_beat(FleetBeat& out) { return mgr_->do_poll_beat(id_, out); }

  /// Enqueues the end-of-stream flush (emits tail beats, then the
  /// end_of_session QualitySummary record). No further pushes are
  /// accepted. Returns false when backpressured.
  bool try_finish() { return mgr_->do_try_finish(id_); }

  /// Blocking finish (drains into `sink` while waiting).
  void finish(std::vector<FleetBeat>& sink) { mgr_->do_finish(id_, sink); }

  /// The session's running QualitySummary, read from its engine (or its
  /// batch lane). The state lives on the owning worker, so call this
  /// only when that worker is quiescent: after join() (in batch mode,
  /// only after join() or after the session finished). The
  /// authoritative end-of-stream snapshot is the end_of_session
  /// FleetBeat the finish emits.
  [[nodiscard]] const QualitySummary& quality() const {
    return mgr_->do_session_quality(id_);
  }

  /// Moves the live session to another worker (see the migration notes
  /// on SessionManager): blocking control-plane call, byte-identical
  /// output guaranteed, `sink` holds every pre-migration beat when it
  /// returns.
  void migrate_to(std::uint32_t worker, std::vector<FleetBeat>& sink) {
    mgr_->do_migrate(id_, worker, sink);
  }

  /// Starts flight-recording the live session into `sink` (see
  /// core/flight_recorder.h): header + initial checkpoint at the exact
  /// cut point, then every subsequent chunk, purely observationally.
  /// Blocking control-plane call; drains into `drained` while waiting.
  void record_start(std::unique_ptr<RecorderSink> sink, std::vector<FleetBeat>& drained,
                    FlightRecorderConfig rcfg = {}) {
    mgr_->do_start_recording(id_, std::move(sink), drained, rcfg);
  }

  /// Cuts a live recording mid-stream and hands the sink back (see
  /// SessionManager notes). The file replays up to the cut.
  std::unique_ptr<RecorderSink> record_stop(std::vector<FleetBeat>& drained) {
    return mgr_->do_stop_recording(id_, drained);
  }

  /// True while the session has an active recording.
  [[nodiscard]] bool recording() const { return mgr_->do_recording(id_); }

  /// Detaches the handle from the session without finishing it: the
  /// session stays alive under its raw id (deprecated-wrapper interop
  /// and the manager-level run_to_completion() sweep). Returns the id;
  /// the handle becomes invalid.
  std::uint32_t release() {
    const std::uint32_t id = id_;
    mgr_ = nullptr;
    return id;
  }

 private:
  friend class SessionManager;
  SessionHandle(SessionManager* mgr, std::uint32_t id) : mgr_(mgr), id_(id) {}

  /// Destructor/assignment guard: finish a still-streaming session so a
  /// dropped handle cannot leak un-flushed state — but only when the
  /// pool can still process the flush (started, not closed). Tail beats
  /// surface through poll(); this handle no longer claims them.
  void reset() {
    if (mgr_ == nullptr) return;
    if (mgr_->started() && !mgr_->closed() && !mgr_->do_session_finished(id_)) {
      std::vector<FleetBeat> drained;
      mgr_->do_finish(id_, drained);
      // Route what we drained so SessionManager::poll()/poll_beat()
      // callers still see it.
      for (const FleetBeat& fb : drained) mgr_->overflow_.push_back(fb);
    }
    mgr_ = nullptr;
  }

  SessionManager* mgr_ = nullptr;
  std::uint32_t id_ = 0;
};

/// The subsystem's working name in prose and benches.
using Fleet = SessionManager;

} // namespace icgkit::core
