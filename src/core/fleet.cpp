#include "core/fleet.h"

#include <chrono>
#include <cstring>
#include <stdexcept>

namespace icgkit::core {

namespace {

// Two-stage wait: stay on the cheap yield path while work is flowing,
// back off to a short sleep once a queue stays blocked — so idle or
// backpressure-parked threads do not pin cores (which matters exactly
// when workers oversubscribe them).
class Backoff {
 public:
  void pause() {
    if (spins_ < 64) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() { spins_ = 0; }

 private:
  unsigned spins_ = 0;
};

} // namespace

// ---------------------------------------------------------------------------
// Session / Worker construction: every buffer the hot path will ever
// touch is sized here, once.
// ---------------------------------------------------------------------------

SessionManager::Session::Session(std::uint32_t id_, dsp::SampleRate fs,
                                 const FleetConfig& cfg)
    : id(id_),
      engine(fs, cfg.pipeline, cfg.window_s),
      slab(cfg.chunk_slots_per_session * cfg.max_chunk * 2) {
  beat_scratch.reserve(64);
}

SessionManager::Worker::Worker(const FleetConfig& cfg)
    : in(cfg.submit_queue_capacity), out(cfg.result_queue_capacity) {
  push_latency_us.reserve(cfg.latency_log_capacity);
}

SessionManager::SessionManager(dsp::SampleRate fs, const FleetConfig& cfg)
    : fs_(fs), cfg_(cfg) {
  if (cfg.workers == 0) throw std::invalid_argument("SessionManager: workers must be >= 1");
  if (cfg.max_chunk == 0) throw std::invalid_argument("SessionManager: max_chunk must be >= 1");
  if (cfg.chunk_slots_per_session == 0)
    throw std::invalid_argument("SessionManager: chunk_slots_per_session must be >= 1");
  workers_.reserve(cfg.workers);
  for (std::size_t i = 0; i < cfg.workers; ++i)
    workers_.push_back(std::make_unique<Worker>(cfg));
}

SessionManager::~SessionManager() {
  if (!started_ || joined_) return;
  if (!closed_) close();
  join();
}

// ---------------------------------------------------------------------------
// Pilot-side API
// ---------------------------------------------------------------------------

std::uint32_t SessionManager::add_session() {
  const auto id = static_cast<std::uint32_t>(sessions_.size());
  sessions_.push_back(std::make_unique<Session>(id, fs_, cfg_));
  return id;
}

void SessionManager::start() {
  if (started_) throw std::logic_error("SessionManager: start() called twice");
  started_ = true;
  active_workers_.store(workers_.size(), std::memory_order_release);
  for (auto& w : workers_)
    w->thread = std::thread([this, &w] {
      worker_loop(*w);
      active_workers_.fetch_sub(1, std::memory_order_acq_rel);
    });
}

bool SessionManager::enqueue_item(Session& s, dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                                  bool finish) {
  // After close() the shutdown sentinel is already queued; anything
  // enqueued behind it would never be processed and idle() would hang.
  if (closed_) throw std::logic_error("SessionManager: submit after close()");
  if (s.finished) throw std::logic_error("SessionManager: session already finished");
  if (s.submitted - s.completed.load(std::memory_order_acquire) >=
      cfg_.chunk_slots_per_session)
    return false;  // no free chunk slot yet
  Worker& w = worker_of(s.id);
  WorkItem item{&s, static_cast<std::uint32_t>(ecg_mv.size()), finish};
  if (!finish) {
    const std::size_t slot = s.submitted % cfg_.chunk_slots_per_session;
    dsp::Sample* base = s.slab.data() + slot * cfg_.max_chunk * 2;
    std::memcpy(base, ecg_mv.data(), ecg_mv.size() * sizeof(dsp::Sample));
    std::memcpy(base + cfg_.max_chunk, z_ohm.data(), z_ohm.size() * sizeof(dsp::Sample));
  }
  if (!w.in.try_push(item)) return false;  // work queue full; slot copy is moot
  ++s.submitted;
  if (finish) s.finished = true;
  return true;
}

bool SessionManager::try_submit(std::uint32_t session, dsp::SignalView ecg_mv,
                                dsp::SignalView z_ohm) {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  if (ecg_mv.size() != z_ohm.size())
    throw std::invalid_argument("SessionManager: chunk length mismatch");
  if (ecg_mv.size() > cfg_.max_chunk)
    throw std::invalid_argument("SessionManager: chunk exceeds max_chunk");
  if (ecg_mv.empty()) return true;
  return enqueue_item(*sessions_[session], ecg_mv, z_ohm, false);
}

void SessionManager::submit(std::uint32_t session, dsp::SignalView ecg_mv,
                            dsp::SignalView z_ohm, std::vector<FleetBeat>& sink) {
  Backoff backoff;
  while (!try_submit(session, ecg_mv, z_ohm)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }
}

bool SessionManager::try_finish_session(std::uint32_t session) {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  return enqueue_item(*sessions_[session], {}, {}, true);
}

void SessionManager::finish_session(std::uint32_t session, std::vector<FleetBeat>& sink) {
  Backoff backoff;
  while (!try_finish_session(session)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }
}

void SessionManager::run_to_completion(std::vector<FleetBeat>& sink) {
  for (const auto& s : sessions_)
    if (!s->finished) finish_session(s->id, sink);
  close();
  Backoff backoff;
  while (!idle()) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }
  join();
  poll(sink);
}

std::size_t SessionManager::drain_queues(std::vector<FleetBeat>& out,
                                         std::size_t max_items) {
  std::size_t moved = 0;
  FleetBeat fb;
  for (auto& w : workers_) {
    while (moved < max_items && w->out.try_pop(fb)) {
      out.push_back(fb);
      ++moved;
    }
  }
  return moved;
}

std::size_t SessionManager::poll(std::vector<FleetBeat>& out, std::size_t max_items) {
  std::size_t moved = 0;
  while (moved < max_items && overflow_pos_ < overflow_.size()) {
    out.push_back(overflow_[overflow_pos_++]);
    ++moved;
  }
  if (overflow_pos_ == overflow_.size() && overflow_pos_ > 0) {
    overflow_.clear();
    overflow_pos_ = 0;
  }
  return moved + drain_queues(out, max_items - moved);
}

void SessionManager::close() {
  if (!started_) throw std::logic_error("SessionManager: close() before start()");
  if (closed_) return;
  closed_ = true;
  for (auto& w : workers_) {
    WorkItem stop{};
    // A worker parked on a full result queue never pops its work queue;
    // drain on its behalf so the sentinel always lands.
    Backoff backoff;
    while (!w->in.try_push(stop)) {
      if (drain_queues(overflow_, static_cast<std::size_t>(-1)) == 0) backoff.pause();
      else backoff.reset();
    }
  }
}

void SessionManager::join() {
  if (!closed_) throw std::logic_error("SessionManager: join() before close()");
  if (joined_) return;
  Backoff backoff;
  while (active_workers_.load(std::memory_order_acquire) > 0) {
    if (drain_queues(overflow_, static_cast<std::size_t>(-1)) == 0) backoff.pause();
    else backoff.reset();
  }
  for (auto& w : workers_) w->thread.join();
  joined_ = true;
}

bool SessionManager::idle() const {
  for (const auto& s : sessions_)
    if (s->completed.load(std::memory_order_acquire) != s->submitted) return false;
  return true;
}

const std::vector<FleetWorkerStats>& SessionManager::worker_stats() const {
  static const std::vector<FleetWorkerStats> empty;
  if (!joined_) return empty;
  stats_cache_.clear();
  for (const auto& w : workers_) {
    FleetWorkerStats s;
    s.chunks = w->chunks.load(std::memory_order_relaxed);
    s.samples = w->samples.load(std::memory_order_relaxed);
    s.beats = w->beats.load(std::memory_order_relaxed);
    s.push_latency_us = w->push_latency_us;
    stats_cache_.push_back(std::move(s));
  }
  return stats_cache_;
}

const QualitySummary& SessionManager::session_quality(std::uint32_t session) const {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  return sessions_[session]->engine.quality_summary();
}

QualitySummary SessionManager::fleet_quality() const {
  QualitySummary total;
  for (const auto& s : sessions_) total.merge(s->engine.quality_summary());
  return total;
}

std::uint64_t SessionManager::total_samples() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->samples.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t SessionManager::total_beats() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->beats.load(std::memory_order_relaxed);
  return n;
}

// ---------------------------------------------------------------------------
// Worker loop: the whole hot path. Single-threaded per session by
// construction; zero steady-state allocation (push_into + reused
// scratch + by-value POD results).
// ---------------------------------------------------------------------------

void SessionManager::worker_loop(Worker& w) {
  WorkItem item;
  Backoff idle_backoff;
  for (;;) {
    if (!w.in.try_pop(item)) {
      idle_backoff.pause();
      continue;
    }
    idle_backoff.reset();
    if (item.session == nullptr) return;  // pool shutdown

    Session& s = *item.session;
    s.beat_scratch.clear();
    if (item.finish) {
      s.engine.finish_into(s.beat_scratch);
    } else {
      const std::size_t slot =
          s.completed.load(std::memory_order_relaxed) % cfg_.chunk_slots_per_session;
      const dsp::Sample* base = s.slab.data() + slot * cfg_.max_chunk * 2;
      const bool log = w.push_latency_us.size() < w.push_latency_us.capacity();
      const auto t0 = log ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
      s.engine.push_into(dsp::SignalView(base, item.len),
                         dsp::SignalView(base + cfg_.max_chunk, item.len), s.beat_scratch);
      if (log) {
        const auto t1 = std::chrono::steady_clock::now();
        w.push_latency_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
      w.samples.fetch_add(item.len, std::memory_order_relaxed);
    }
    // Release the chunk slot before publishing results: the slot's data
    // is fully consumed, and a parked result push must not block reuse.
    s.completed.fetch_add(1, std::memory_order_release);
    w.chunks.fetch_add(1, std::memory_order_relaxed);
    for (const BeatRecord& b : s.beat_scratch) {
      FleetBeat fb{s.id, b, /*end_of_session=*/false, {}};
      Backoff park;  // pilot must poll; park instead of pinning a core
      while (!w.out.try_push(fb)) park.pause();
      w.beats.fetch_add(1, std::memory_order_relaxed);
    }
    if (item.finish) {
      // Terminal record: the session's quality aggregate, emitted exactly
      // once, after the tail beats (not counted in the beat totals).
      FleetBeat fb{s.id, {}, /*end_of_session=*/true, s.engine.quality_summary()};
      Backoff park;
      while (!w.out.try_push(fb)) park.pause();
    }
  }
}

} // namespace icgkit::core
