#include "core/fleet.h"

#include "dsp/denormal.h"
#include "dsp/simd.h"

#include <chrono>
#include <cstring>
#include <stdexcept>

namespace icgkit::core {

namespace {

// Two-stage wait: stay on the cheap yield path while work is flowing,
// back off to a short sleep once a queue stays blocked — so idle or
// backpressure-parked threads do not pin cores (which matters exactly
// when workers oversubscribe them).
class Backoff {
 public:
  void pause() {
    if (spins_ < 64) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() { spins_ = 0; }

 private:
  unsigned spins_ = 0;
};

} // namespace

// ---------------------------------------------------------------------------
// Session / Worker construction: every buffer the hot path will ever
// touch is sized here, once.
// ---------------------------------------------------------------------------

SessionManager::Session::Session(std::uint32_t id_, std::uint32_t worker_,
                                 dsp::SampleRate fs, const FleetConfig& cfg)
    : id(id_),
      engine(fs, cfg.pipeline, cfg.window_s),
      slab(cfg.chunk_slots_per_session * cfg.max_chunk * 2),
      worker(worker_) {
  beat_scratch.reserve(64);
}

SessionManager::Worker::Worker(const FleetConfig& cfg)
    : in(cfg.submit_queue_capacity), out(cfg.result_queue_capacity) {
  push_latency_us.reserve(cfg.latency_log_capacity);
}

SessionManager::SessionManager(dsp::SampleRate fs, const FleetConfig& cfg)
    : fs_(fs), cfg_(cfg) {
  if (cfg.workers == 0) throw std::invalid_argument("SessionManager: workers must be >= 1");
  if (cfg.max_chunk == 0) throw std::invalid_argument("SessionManager: max_chunk must be >= 1");
  if (cfg.chunk_slots_per_session == 0)
    throw std::invalid_argument("SessionManager: chunk_slots_per_session must be >= 1");
  if (cfg.batch_width > 1 && !session_batch_width_supported(cfg.batch_width))
    throw std::invalid_argument("SessionManager: batch_width must be 0, 1, 4 or 8");
  // 0 = auto: pick the width this build's ISA runs without register
  // spills (see dsp::default_batch_width). Resolved once, here, so
  // every later decision (group formation, stats) sees a concrete width.
  if (cfg_.batch_width == 0) cfg_.batch_width = dsp::default_batch_width();
  workers_.reserve(cfg.workers);
  for (std::size_t i = 0; i < cfg.workers; ++i)
    workers_.push_back(std::make_unique<Worker>(cfg));
}

SessionManager::~SessionManager() {
  if (!started_ || joined_) return;
  if (!closed_) close();
  join();
}

// ---------------------------------------------------------------------------
// Pilot-side API
// ---------------------------------------------------------------------------

std::uint32_t SessionManager::do_add_session() {
  // Historical static placement, kept for the deprecated wrapper only.
  return do_add_session_on(
      static_cast<std::uint32_t>(sessions_.size() % cfg_.workers));
}

std::uint32_t SessionManager::do_add_session_on(std::uint32_t worker) {
  if (worker >= workers_.size())
    throw std::out_of_range("SessionManager: unknown worker");
  const auto id = static_cast<std::uint32_t>(sessions_.size());
  sessions_.push_back(std::make_unique<Session>(id, worker, fs_, cfg_));
  return id;
}

SessionHandle SessionManager::open() {
  return SessionHandle(this, do_add_session_on(least_loaded_worker()));
}

SessionHandle SessionManager::open_on(std::uint32_t worker) {
  return SessionHandle(this, do_add_session_on(worker));
}

SessionManager::Session& SessionManager::checked_session(std::uint32_t session) {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  return *sessions_[session];
}

const SessionManager::Session& SessionManager::checked_session(
    std::uint32_t session) const {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  return *sessions_[session];
}

void SessionManager::start() {
  if (started_) throw std::logic_error("SessionManager: start() called twice");
  if (cfg_.batch_width > 1) form_batch_groups();
  started_ = true;
  active_workers_.store(workers_.size(), std::memory_order_release);
  for (auto& w : workers_)
    w->thread = std::thread([this, &w] {
      worker_loop(*w);
      active_workers_.fetch_sub(1, std::memory_order_acq_rel);
    });
}

void SessionManager::form_batch_groups() {
  // Group batch_width same-worker sessions (in id order) into lockstep
  // SIMD batches. Every session shares this manager's configuration, and
  // none has been *processed* yet (workers aren't running — pre-start
  // submits are still queued), so the lanes are trivially in lockstep at
  // position 0 and pack() always succeeds. The pack goes through the
  // real checkpoint format on purpose: it is the same path a future
  // repack of live sessions would use, and it keeps the batch engine's
  // state provably equal to the scalar engines it absorbed.
  const std::size_t width = cfg_.batch_width;
  std::vector<Session*> cohort;
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    cohort.clear();
    for (auto& s : sessions_)
      if (s->worker == wi) cohort.push_back(s.get());
    for (std::size_t base = 0; base + width <= cohort.size(); base += width) {
      auto g = std::make_unique<BatchGroup>();
      g->lanes.assign(cohort.begin() + static_cast<std::ptrdiff_t>(base),
                      cohort.begin() + static_cast<std::ptrdiff_t>(base + width));
      g->batch = make_session_batch(width, fs_, cfg_.pipeline, cfg_.window_s);
      g->slots = cfg_.chunk_slots_per_session;
      g->max_chunk = cfg_.max_chunk;
      g->stash.resize(width * g->slots * g->max_chunk * 2);
      g->stash_len.assign(width * g->slots, 0);
      g->head.assign(width, 0);
      g->count.assign(width, 0);
      g->lane_beats.resize(width);
      g->lane_blobs.resize(width);
      g->ecg_ptrs.resize(width);
      g->z_ptrs.resize(width);
      for (std::size_t l = 0; l < width; ++l)
        g->lanes[l]->engine.checkpoint_into(g->lane_blobs[l]);
      g->batch->pack(g->lane_blobs);
      g->packed = true;
      for (std::size_t l = 0; l < width; ++l) {
        g->lanes[l]->group = g.get();
        g->lanes[l]->lane = static_cast<std::uint32_t>(l);
      }
      workers_[wi]->groups.push_back(g.get());
      groups_.push_back(std::move(g));
    }
  }
}

bool SessionManager::enqueue_item(Session& s, dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                                  SessionOp op) {
  // After close() the shutdown sentinel is already queued; anything
  // enqueued behind it would never be processed and idle() would hang.
  if (closed_) throw std::logic_error("SessionManager: submit after close()");
  if (s.finished) throw std::logic_error("SessionManager: session already finished");
  // Every op occupies one slot of the in-flight window so the
  // submitted/completed counters stay aligned on both sides (the worker
  // derives the slab slot of a chunk from its completed count).
  if (s.submitted - s.completed.load(std::memory_order_acquire) >=
      cfg_.chunk_slots_per_session)
    return false;  // no free chunk slot yet
  Worker& w = worker_of(s);
  WorkItem item{&s, static_cast<std::uint32_t>(ecg_mv.size()), op};
  if (op == SessionOp::Chunk) {
    const std::size_t slot = s.submitted % cfg_.chunk_slots_per_session;
    dsp::Sample* base = s.slab.data() + slot * cfg_.max_chunk * 2;
    std::memcpy(base, ecg_mv.data(), ecg_mv.size() * sizeof(dsp::Sample));
    std::memcpy(base + cfg_.max_chunk, z_ohm.data(), z_ohm.size() * sizeof(dsp::Sample));
  }
  if (!w.in.try_push(item)) return false;  // work queue full; slot copy is moot
  ++s.submitted;
  if (op == SessionOp::Finish) s.finished = true;
  return true;
}

bool SessionManager::do_try_submit(std::uint32_t session, dsp::SignalView ecg_mv,
                                dsp::SignalView z_ohm) {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  if (ecg_mv.size() != z_ohm.size())
    throw std::invalid_argument("SessionManager: chunk length mismatch");
  if (ecg_mv.size() > cfg_.max_chunk)
    throw std::invalid_argument("SessionManager: chunk exceeds max_chunk");
  if (ecg_mv.empty()) return true;
  return enqueue_item(*sessions_[session], ecg_mv, z_ohm, SessionOp::Chunk);
}

void SessionManager::do_submit(std::uint32_t session, dsp::SignalView ecg_mv,
                            dsp::SignalView z_ohm, std::vector<FleetBeat>& sink) {
  Backoff backoff;
  while (!do_try_submit(session, ecg_mv, z_ohm)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }
}

bool SessionManager::do_try_finish(std::uint32_t session) {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  return enqueue_item(*sessions_[session], {}, {}, SessionOp::Finish);
}

void SessionManager::do_finish(std::uint32_t session, std::vector<FleetBeat>& sink) {
  Backoff backoff;
  while (!do_try_finish(session)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }
}

void SessionManager::do_migrate(std::uint32_t session, std::uint32_t target_worker,
                             std::vector<FleetBeat>& sink) {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  if (target_worker >= workers_.size())
    throw std::out_of_range("SessionManager: unknown worker");
  if (!started_) throw std::logic_error("SessionManager: migrate() before start()");
  Session& s = *sessions_[session];
  if (s.finished) throw std::logic_error("SessionManager: migrate() after finish");

  // 1. Ask the current owner to checkpoint. The work queue serializes
  //    this behind every chunk submitted so far, so the blob captures
  //    the session exactly at the cut point.
  s.checkpoint_ready.store(false, std::memory_order_relaxed);
  Backoff backoff;
  while (!enqueue_item(s, {}, {}, SessionOp::CheckpointOut)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }

  // 2. Wait for the blob (polling so a result-parked source can drain).
  backoff.reset();
  while (!s.checkpoint_ready.load(std::memory_order_acquire)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }

  // 3. One full drain pass. Every pre-cut beat of this session was
  //    pushed to the source's result queue before checkpoint_ready was
  //    released, so after the acquire above a single pass moves them all
  //    into `sink` — which is what keeps the per-session beat order
  //    intact even though the post-cut beats will surface through a
  //    different worker's queue.
  poll(sink);

  // 4. Re-home the session and hand the blob to the target. The
  //    pilot's acquire in step 2 plus the SPSC push below give the
  //    target a happens-before edge covering both the blob and the
  //    engine memory it will overwrite.
  s.worker = target_worker;
  backoff.reset();
  while (!enqueue_item(s, {}, {}, SessionOp::RestoreIn)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }
  ++migrations_;
}

void SessionManager::do_start_recording(std::uint32_t session,
                                     std::unique_ptr<RecorderSink> sink,
                                     std::vector<FleetBeat>& drained,
                                     FlightRecorderConfig rcfg) {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  if (!started_) throw std::logic_error("SessionManager: start_recording() before start()");
  if (sink == nullptr)
    throw std::invalid_argument("SessionManager: start_recording() needs a sink");
  Session& s = *sessions_[session];
  if (s.finished) throw std::logic_error("SessionManager: start_recording() after finish");
  if (s.is_recording)
    throw std::logic_error("SessionManager: session is already being recorded");

  // The fields below are published to the worker by the work-queue push
  // inside enqueue_item (SPSC release/acquire), read there, and not
  // touched again by the pilot until the stop/finish acknowledgement.
  rcfg.window_s = cfg_.window_s;
  s.recorder_cfg = rcfg;
  s.recorder_sink = std::move(sink);
  s.record_ack.store(false, std::memory_order_relaxed);

  Backoff backoff;
  while (!enqueue_item(s, {}, {}, SessionOp::RecordStart)) {
    if (poll(drained) == 0) backoff.pause();
    else backoff.reset();
  }
  backoff.reset();
  while (!s.record_ack.load(std::memory_order_acquire)) {
    if (poll(drained) == 0) backoff.pause();
    else backoff.reset();
  }
  s.is_recording = true;
}

std::unique_ptr<RecorderSink> SessionManager::do_stop_recording(
    std::uint32_t session, std::vector<FleetBeat>& drained) {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  Session& s = *sessions_[session];
  if (!s.is_recording)
    throw std::logic_error("SessionManager: session is not being recorded");
  if (s.finished)
    throw std::logic_error(
        "SessionManager: recording was already finalized by finish_session");

  s.record_ack.store(false, std::memory_order_relaxed);
  Backoff backoff;
  while (!enqueue_item(s, {}, {}, SessionOp::RecordStop)) {
    if (poll(drained) == 0) backoff.pause();
    else backoff.reset();
  }
  backoff.reset();
  while (!s.record_ack.load(std::memory_order_acquire)) {
    if (poll(drained) == 0) backoff.pause();
    else backoff.reset();
  }
  // The acquire above covers the worker's final writes; handing the
  // sink back lets the pilot read its bytes, and dropping it closes a
  // file sink deterministically at the cut.
  s.is_recording = false;
  return std::move(s.recorder_sink);
}

bool SessionManager::do_recording(std::uint32_t session) const {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  return sessions_[session]->is_recording;
}

std::uint32_t SessionManager::do_session_worker(std::uint32_t session) const {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  return sessions_[session]->worker;
}

std::uint32_t SessionManager::least_loaded_worker() const {
  std::vector<std::size_t> load(workers_.size(), 0);
  for (const auto& s : sessions_)
    if (!s->finished) ++load[s->worker];
  std::uint32_t best = 0;
  for (std::uint32_t w = 1; w < load.size(); ++w)
    if (load[w] < load[best]) best = w;
  return best;
}

void SessionManager::worker_queue_depths(std::vector<std::size_t>& out) const {
  out.assign(workers_.size(), 0);
  for (const auto& s : sessions_)
    out[s->worker] += static_cast<std::size_t>(
        s->submitted - s->completed.load(std::memory_order_acquire));
}

void SessionManager::worker_resident_sessions(std::vector<std::size_t>& out) const {
  out.assign(workers_.size(), 0);
  for (const auto& s : sessions_)
    if (!s->finished) ++out[s->worker];
}

bool SessionManager::do_session_finished(std::uint32_t session) const {
  return checked_session(session).finished;
}

std::uint64_t SessionManager::do_session_processed(std::uint32_t session) const {
  return checked_session(session).chunks_done.load(std::memory_order_acquire);
}

bool SessionManager::do_poll_beat(std::uint32_t session, FleetBeat& out) {
  Session& s = checked_session(session);
  if (s.inbox_pos == s.inbox.size()) {
    // Nothing parked for this session: drain the worker queues once and
    // route everything to the producing sessions' inboxes. The vectors
    // involved keep their capacity, so the steady state allocates only
    // while an inbox grows to its high-water mark.
    route_scratch_.clear();
    poll(route_scratch_);
    for (const FleetBeat& fb : route_scratch_) {
      Session& t = checked_session(fb.session);
      if (t.inbox_pos == t.inbox.size()) {
        t.inbox.clear();
        t.inbox_pos = 0;
      }
      t.inbox.push_back(fb);
    }
  }
  if (s.inbox_pos == s.inbox.size()) return false;
  out = s.inbox[s.inbox_pos++];
  if (s.inbox_pos == s.inbox.size()) {
    s.inbox.clear();
    s.inbox_pos = 0;
  }
  return true;
}

void SessionManager::run_to_completion(std::vector<FleetBeat>& sink) {
  for (const auto& s : sessions_)
    if (!s->finished) do_finish(s->id, sink);
  close();
  Backoff backoff;
  while (!idle()) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }
  join();
  poll(sink);
}

std::size_t SessionManager::drain_queues(std::vector<FleetBeat>& out,
                                         std::size_t max_items) {
  std::size_t moved = 0;
  FleetBeat fb;
  for (auto& w : workers_) {
    while (moved < max_items && w->out.try_pop(fb)) {
      out.push_back(fb);
      ++moved;
    }
  }
  return moved;
}

std::size_t SessionManager::poll(std::vector<FleetBeat>& out, std::size_t max_items) {
  std::size_t moved = 0;
  while (moved < max_items && overflow_pos_ < overflow_.size()) {
    out.push_back(overflow_[overflow_pos_++]);
    ++moved;
  }
  if (overflow_pos_ == overflow_.size() && overflow_pos_ > 0) {
    overflow_.clear();
    overflow_pos_ = 0;
  }
  return moved + drain_queues(out, max_items - moved);
}

void SessionManager::close() {
  if (!started_) throw std::logic_error("SessionManager: close() before start()");
  if (closed_) return;
  closed_ = true;
  for (auto& w : workers_) {
    WorkItem stop{};
    // A worker parked on a full result queue never pops its work queue;
    // drain on its behalf so the sentinel always lands.
    Backoff backoff;
    while (!w->in.try_push(stop)) {
      if (drain_queues(overflow_, static_cast<std::size_t>(-1)) == 0) backoff.pause();
      else backoff.reset();
    }
  }
}

void SessionManager::join() {
  if (!closed_) throw std::logic_error("SessionManager: join() before close()");
  if (joined_) return;
  Backoff backoff;
  while (active_workers_.load(std::memory_order_acquire) > 0) {
    if (drain_queues(overflow_, static_cast<std::size_t>(-1)) == 0) backoff.pause();
    else backoff.reset();
  }
  for (auto& w : workers_) w->thread.join();
  joined_ = true;
}

bool SessionManager::idle() const {
  for (const auto& s : sessions_)
    if (s->completed.load(std::memory_order_acquire) != s->submitted) return false;
  return true;
}

const std::vector<FleetWorkerStats>& SessionManager::worker_stats() const {
  static const std::vector<FleetWorkerStats> empty;
  if (!joined_) return empty;
  stats_cache_.clear();
  for (const auto& w : workers_) {
    FleetWorkerStats s;
    s.chunks = w->chunks.load(std::memory_order_relaxed);
    s.samples = w->samples.load(std::memory_order_relaxed);
    s.beats = w->beats.load(std::memory_order_relaxed);
    s.push_latency_us = w->push_latency_us;
    stats_cache_.push_back(std::move(s));
  }
  return stats_cache_;
}

const QualitySummary& SessionManager::do_session_quality(std::uint32_t session) const {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  const Session& s = *sessions_[session];
  // While a session rides in a packed group its scalar engine is stale;
  // the live aggregate lives in the batch engine's per-lane assembler.
  if (s.group != nullptr && s.group->packed)
    return s.group->batch->lane_quality(s.lane);
  return s.engine.quality_summary();
}

QualitySummary SessionManager::fleet_quality() const {
  QualitySummary total;
  for (const auto& s : sessions_) {
    if (s->group != nullptr && s->group->packed)
      total.merge(s->group->batch->lane_quality(s->lane));
    else
      total.merge(s->engine.quality_summary());
  }
  return total;
}

std::uint64_t SessionManager::total_samples() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->samples.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t SessionManager::total_beats() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->beats.load(std::memory_order_relaxed);
  return n;
}

// ---------------------------------------------------------------------------
// Worker loop: the whole hot path. Single-threaded per session by
// construction; zero steady-state allocation (push_into + reused
// scratch + by-value POD results).
// ---------------------------------------------------------------------------

void SessionManager::worker_loop(Worker& w) {
  // Flush-to-zero/denormals-are-zero for the whole worker thread: IIR
  // filter tails otherwise decay into subnormal territory between beats
  // and pay the microcode assist on every multiply. RAII — restored on
  // exit, a no-op on targets without the control bits.
  dsp::DenormalGuard denormal_guard;
  WorkItem item;
  Backoff idle_backoff;
  for (;;) {
    if (!w.in.try_pop(item)) {
      idle_backoff.pause();
      continue;
    }
    idle_backoff.reset();
    if (item.session == nullptr) {
      // Pool shutdown: any chunks still stashed in lockstep groups must
      // reach their engines before the thread exits, or idle()/beat
      // totals would lie. Dissolve unpacks to scalar and flushes.
      for (BatchGroup* g : w.groups) dissolve_group(*g, w);
      return;
    }

    Session& s = *item.session;
    if (s.group != nullptr && s.group->packed) {
      // Lockstep fast path: buffer the chunk and advance the whole
      // group when every lane has work. Any op the batch engine cannot
      // service in lockstep (finish, checkpoint, restore, stash
      // overflow) dissolves the group back to scalar sessions first.
      if (item.op == SessionOp::Chunk && s.group->count[s.lane] < s.group->slots) {
        stash_chunk(*s.group, s, item, w);
        continue;
      }
      dissolve_group(*s.group, w);
    }
    s.beat_scratch.clear();
    switch (item.op) {
      case SessionOp::Finish:
        s.engine.finish_into(s.beat_scratch);
        if (s.recorder) {
          // A recorded session that runs to completion finalizes its own
          // file: tail beats + terminal summary, then the recorder goes
          // away (the pilot releases the sink when the manager dies).
          s.recorder->on_finish(s.engine, s.beat_scratch);
          s.recorder.reset();
        }
        break;
      case SessionOp::CheckpointOut:
        // Serialize after everything submitted ahead of this item; the
        // release store publishes the blob (and the engine memory) to
        // the pilot, which relays the handoff to the target worker
        // through its work queue.
        s.engine.checkpoint_into(s.migration_blob);
        s.completed.fetch_add(1, std::memory_order_release);
        s.checkpoint_ready.store(true, std::memory_order_release);
        w.chunks.fetch_add(1, std::memory_order_relaxed);
        continue;
      case SessionOp::RestoreIn:
        // The blob is load-bearing: restore() overwrites every carried
        // field from it, so the round-trip tests (not shared memory)
        // are what guarantee the resumed stream's byte identity.
        s.engine.restore(s.migration_blob);
        s.completed.fetch_add(1, std::memory_order_release);
        w.chunks.fetch_add(1, std::memory_order_relaxed);
        continue;
      case SessionOp::RecordStart:
        // Writes the file header and the initial checkpoint at this
        // exact cut (serialized behind every prior chunk). The ack is
        // released only after those bytes reached the sink.
        s.recorder = std::make_unique<FlightRecorder>(*s.recorder_sink, s.engine,
                                                      s.recorder_cfg);
        s.completed.fetch_add(1, std::memory_order_release);
        s.record_ack.store(true, std::memory_order_release);
        w.chunks.fetch_add(1, std::memory_order_relaxed);
        continue;
      case SessionOp::RecordStop:
        if (s.recorder) {
          s.recorder->on_stop(s.engine);
          s.recorder.reset();
        }
        s.completed.fetch_add(1, std::memory_order_release);
        s.record_ack.store(true, std::memory_order_release);
        w.chunks.fetch_add(1, std::memory_order_relaxed);
        continue;
      case SessionOp::Chunk: {
        const std::size_t slot =
            s.completed.load(std::memory_order_relaxed) % cfg_.chunk_slots_per_session;
        const dsp::Sample* base = s.slab.data() + slot * cfg_.max_chunk * 2;
        const bool log = w.push_latency_us.size() < w.push_latency_us.capacity();
        const auto t0 = log ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
        s.engine.push_into(dsp::SignalView(base, item.len),
                           dsp::SignalView(base + cfg_.max_chunk, item.len),
                           s.beat_scratch);
        if (log) {
          const auto t1 = std::chrono::steady_clock::now();
          w.push_latency_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
        if (s.recorder)
          s.recorder->on_chunk(s.engine, dsp::SignalView(base, item.len),
                               dsp::SignalView(base + cfg_.max_chunk, item.len),
                               s.beat_scratch);
        w.samples.fetch_add(item.len, std::memory_order_relaxed);
        s.chunks_done.fetch_add(1, std::memory_order_release);
        break;
      }
    }
    // Release the chunk slot before publishing results: the slot's data
    // is fully consumed, and a parked result push must not block reuse.
    s.completed.fetch_add(1, std::memory_order_release);
    w.chunks.fetch_add(1, std::memory_order_relaxed);
    emit_beats(s, w, s.beat_scratch);
    if (item.op == SessionOp::Finish) {
      // Terminal record: the session's quality aggregate, emitted exactly
      // once, after the tail beats (not counted in the beat totals).
      FleetBeat fb{s.id, {}, /*end_of_session=*/true, s.engine.quality_summary()};
      Backoff park;
      while (!w.out.try_push(fb)) park.pause();
    }
  }
}

// ---------------------------------------------------------------------------
// Lockstep batch plumbing (worker-thread side). A BatchGroup is owned by
// exactly one worker while packed, so none of this needs extra locking:
// the work queue already serializes every touch.
// ---------------------------------------------------------------------------

void SessionManager::emit_beats(Session& s, Worker& w,
                                const std::vector<BeatRecord>& beats) {
  for (const BeatRecord& b : beats) {
    FleetBeat fb{s.id, b, /*end_of_session=*/false, {}};
    Backoff park;  // pilot must poll; park instead of pinning a core
    while (!w.out.try_push(fb)) park.pause();
    w.beats.fetch_add(1, std::memory_order_relaxed);
  }
}

void SessionManager::stash_chunk(BatchGroup& g, Session& s, const WorkItem& item,
                                 Worker& w) {
  // Copy the chunk out of the session's slab into the group's stash and
  // release the slab slot immediately — the pilot's submit window must
  // not stall on other lanes catching up. `completed` therefore means
  // "accepted by the worker", not "pushed through a pipeline"; the
  // samples reach the engine in process_batch_ready() or at dissolve.
  const std::size_t slab_slot =
      s.completed.load(std::memory_order_relaxed) % cfg_.chunk_slots_per_session;
  const dsp::Sample* base = s.slab.data() + slab_slot * cfg_.max_chunk * 2;
  const std::size_t stash_slot = (g.head[s.lane] + g.count[s.lane]) % g.slots;
  dsp::Sample* dst = g.stash.data() + (s.lane * g.slots + stash_slot) * g.max_chunk * 2;
  std::memcpy(dst, base, item.len * sizeof(dsp::Sample));
  std::memcpy(dst + g.max_chunk, base + cfg_.max_chunk, item.len * sizeof(dsp::Sample));
  g.stash_len[s.lane * g.slots + stash_slot] = item.len;
  ++g.count[s.lane];
  s.completed.fetch_add(1, std::memory_order_release);
  s.chunks_done.fetch_add(1, std::memory_order_release);
  w.chunks.fetch_add(1, std::memory_order_relaxed);
  w.samples.fetch_add(item.len, std::memory_order_relaxed);
  process_batch_ready(g, w);
}

void SessionManager::process_batch_ready(BatchGroup& g, Worker& w) {
  const std::size_t width = g.lanes.size();
  while (g.packed) {
    for (std::size_t l = 0; l < width; ++l)
      if (g.count[l] == 0) return;  // some lane still owes a chunk
    const std::uint32_t len = g.stash_len[0 * g.slots + g.head[0]];
    for (std::size_t l = 1; l < width; ++l) {
      if (g.stash_len[l * g.slots + g.head[l]] != len) {
        // Lanes fed with different chunk sizes can't tick in lockstep;
        // fall back to scalar rather than guess a split.
        dissolve_group(g, w);
        return;
      }
    }
    for (std::size_t l = 0; l < width; ++l) {
      const dsp::Sample* src =
          g.stash.data() + (l * g.slots + g.head[l]) * g.max_chunk * 2;
      g.ecg_ptrs[l] = src;
      g.z_ptrs[l] = src + g.max_chunk;
      g.lane_beats[l].clear();
    }
    const bool log = w.push_latency_us.size() < w.push_latency_us.capacity();
    const auto t0 = log ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
    g.batch->push(g.ecg_ptrs.data(), g.z_ptrs.data(), len, g.lane_beats.data());
    if (log) {
      const auto t1 = std::chrono::steady_clock::now();
      w.push_latency_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    for (std::size_t l = 0; l < width; ++l) {
      g.head[l] = (g.head[l] + 1) % g.slots;
      --g.count[l];
      emit_beats(*g.lanes[l], w, g.lane_beats[l]);
    }
  }
}

void SessionManager::dissolve_group(BatchGroup& g, Worker& w) {
  if (!g.packed) return;
  g.packed = false;
  // unpack() is the production use of the lane de-interleave: each lane
  // becomes a v1 checkpoint blob that the scalar engine restores from,
  // so a dissolved session is bit-for-bit the session a scalar worker
  // would have produced.
  g.batch->unpack(g.lane_blobs);
  for (std::size_t l = 0; l < g.lanes.size(); ++l) {
    Session& ls = *g.lanes[l];
    ls.engine.restore(g.lane_blobs[l]);
    // Flush this lane's stashed chunks through the scalar engine. Their
    // chunk/sample counters were bumped at stash time; only beats and
    // latency samples are new here.
    while (g.count[l] > 0) {
      const dsp::Sample* src =
          g.stash.data() + (l * g.slots + g.head[l]) * g.max_chunk * 2;
      const std::uint32_t len = g.stash_len[l * g.slots + g.head[l]];
      ls.beat_scratch.clear();
      ls.engine.push_into(dsp::SignalView(src, len),
                          dsp::SignalView(src + g.max_chunk, len), ls.beat_scratch);
      emit_beats(ls, w, ls.beat_scratch);
      g.head[l] = (g.head[l] + 1) % g.slots;
      --g.count[l];
    }
    ls.group = nullptr;
  }
}

} // namespace icgkit::core
