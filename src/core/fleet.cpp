#include "core/fleet.h"

#include <chrono>
#include <cstring>
#include <stdexcept>

namespace icgkit::core {

namespace {

// Two-stage wait: stay on the cheap yield path while work is flowing,
// back off to a short sleep once a queue stays blocked — so idle or
// backpressure-parked threads do not pin cores (which matters exactly
// when workers oversubscribe them).
class Backoff {
 public:
  void pause() {
    if (spins_ < 64) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() { spins_ = 0; }

 private:
  unsigned spins_ = 0;
};

} // namespace

// ---------------------------------------------------------------------------
// Session / Worker construction: every buffer the hot path will ever
// touch is sized here, once.
// ---------------------------------------------------------------------------

SessionManager::Session::Session(std::uint32_t id_, dsp::SampleRate fs,
                                 const FleetConfig& cfg)
    : id(id_),
      engine(fs, cfg.pipeline, cfg.window_s),
      slab(cfg.chunk_slots_per_session * cfg.max_chunk * 2),
      worker(id_ % static_cast<std::uint32_t>(cfg.workers)) {
  beat_scratch.reserve(64);
}

SessionManager::Worker::Worker(const FleetConfig& cfg)
    : in(cfg.submit_queue_capacity), out(cfg.result_queue_capacity) {
  push_latency_us.reserve(cfg.latency_log_capacity);
}

SessionManager::SessionManager(dsp::SampleRate fs, const FleetConfig& cfg)
    : fs_(fs), cfg_(cfg) {
  if (cfg.workers == 0) throw std::invalid_argument("SessionManager: workers must be >= 1");
  if (cfg.max_chunk == 0) throw std::invalid_argument("SessionManager: max_chunk must be >= 1");
  if (cfg.chunk_slots_per_session == 0)
    throw std::invalid_argument("SessionManager: chunk_slots_per_session must be >= 1");
  workers_.reserve(cfg.workers);
  for (std::size_t i = 0; i < cfg.workers; ++i)
    workers_.push_back(std::make_unique<Worker>(cfg));
}

SessionManager::~SessionManager() {
  if (!started_ || joined_) return;
  if (!closed_) close();
  join();
}

// ---------------------------------------------------------------------------
// Pilot-side API
// ---------------------------------------------------------------------------

std::uint32_t SessionManager::add_session() {
  const auto id = static_cast<std::uint32_t>(sessions_.size());
  sessions_.push_back(std::make_unique<Session>(id, fs_, cfg_));
  return id;
}

void SessionManager::start() {
  if (started_) throw std::logic_error("SessionManager: start() called twice");
  started_ = true;
  active_workers_.store(workers_.size(), std::memory_order_release);
  for (auto& w : workers_)
    w->thread = std::thread([this, &w] {
      worker_loop(*w);
      active_workers_.fetch_sub(1, std::memory_order_acq_rel);
    });
}

bool SessionManager::enqueue_item(Session& s, dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                                  SessionOp op) {
  // After close() the shutdown sentinel is already queued; anything
  // enqueued behind it would never be processed and idle() would hang.
  if (closed_) throw std::logic_error("SessionManager: submit after close()");
  if (s.finished) throw std::logic_error("SessionManager: session already finished");
  // Every op occupies one slot of the in-flight window so the
  // submitted/completed counters stay aligned on both sides (the worker
  // derives the slab slot of a chunk from its completed count).
  if (s.submitted - s.completed.load(std::memory_order_acquire) >=
      cfg_.chunk_slots_per_session)
    return false;  // no free chunk slot yet
  Worker& w = worker_of(s);
  WorkItem item{&s, static_cast<std::uint32_t>(ecg_mv.size()), op};
  if (op == SessionOp::Chunk) {
    const std::size_t slot = s.submitted % cfg_.chunk_slots_per_session;
    dsp::Sample* base = s.slab.data() + slot * cfg_.max_chunk * 2;
    std::memcpy(base, ecg_mv.data(), ecg_mv.size() * sizeof(dsp::Sample));
    std::memcpy(base + cfg_.max_chunk, z_ohm.data(), z_ohm.size() * sizeof(dsp::Sample));
  }
  if (!w.in.try_push(item)) return false;  // work queue full; slot copy is moot
  ++s.submitted;
  if (op == SessionOp::Finish) s.finished = true;
  return true;
}

bool SessionManager::try_submit(std::uint32_t session, dsp::SignalView ecg_mv,
                                dsp::SignalView z_ohm) {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  if (ecg_mv.size() != z_ohm.size())
    throw std::invalid_argument("SessionManager: chunk length mismatch");
  if (ecg_mv.size() > cfg_.max_chunk)
    throw std::invalid_argument("SessionManager: chunk exceeds max_chunk");
  if (ecg_mv.empty()) return true;
  return enqueue_item(*sessions_[session], ecg_mv, z_ohm, SessionOp::Chunk);
}

void SessionManager::submit(std::uint32_t session, dsp::SignalView ecg_mv,
                            dsp::SignalView z_ohm, std::vector<FleetBeat>& sink) {
  Backoff backoff;
  while (!try_submit(session, ecg_mv, z_ohm)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }
}

bool SessionManager::try_finish_session(std::uint32_t session) {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  return enqueue_item(*sessions_[session], {}, {}, SessionOp::Finish);
}

void SessionManager::finish_session(std::uint32_t session, std::vector<FleetBeat>& sink) {
  Backoff backoff;
  while (!try_finish_session(session)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }
}

void SessionManager::migrate(std::uint32_t session, std::uint32_t target_worker,
                             std::vector<FleetBeat>& sink) {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  if (target_worker >= workers_.size())
    throw std::out_of_range("SessionManager: unknown worker");
  if (!started_) throw std::logic_error("SessionManager: migrate() before start()");
  Session& s = *sessions_[session];
  if (s.finished) throw std::logic_error("SessionManager: migrate() after finish");

  // 1. Ask the current owner to checkpoint. The work queue serializes
  //    this behind every chunk submitted so far, so the blob captures
  //    the session exactly at the cut point.
  s.checkpoint_ready.store(false, std::memory_order_relaxed);
  Backoff backoff;
  while (!enqueue_item(s, {}, {}, SessionOp::CheckpointOut)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }

  // 2. Wait for the blob (polling so a result-parked source can drain).
  backoff.reset();
  while (!s.checkpoint_ready.load(std::memory_order_acquire)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }

  // 3. One full drain pass. Every pre-cut beat of this session was
  //    pushed to the source's result queue before checkpoint_ready was
  //    released, so after the acquire above a single pass moves them all
  //    into `sink` — which is what keeps the per-session beat order
  //    intact even though the post-cut beats will surface through a
  //    different worker's queue.
  poll(sink);

  // 4. Re-home the session and hand the blob to the target. The
  //    pilot's acquire in step 2 plus the SPSC push below give the
  //    target a happens-before edge covering both the blob and the
  //    engine memory it will overwrite.
  s.worker = target_worker;
  backoff.reset();
  while (!enqueue_item(s, {}, {}, SessionOp::RestoreIn)) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }
  ++migrations_;
}

std::uint32_t SessionManager::session_worker(std::uint32_t session) const {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  return sessions_[session]->worker;
}

std::uint32_t SessionManager::least_loaded_worker() const {
  std::vector<std::size_t> load(workers_.size(), 0);
  for (const auto& s : sessions_)
    if (!s->finished) ++load[s->worker];
  std::uint32_t best = 0;
  for (std::uint32_t w = 1; w < load.size(); ++w)
    if (load[w] < load[best]) best = w;
  return best;
}

void SessionManager::run_to_completion(std::vector<FleetBeat>& sink) {
  for (const auto& s : sessions_)
    if (!s->finished) finish_session(s->id, sink);
  close();
  Backoff backoff;
  while (!idle()) {
    if (poll(sink) == 0) backoff.pause();
    else backoff.reset();
  }
  join();
  poll(sink);
}

std::size_t SessionManager::drain_queues(std::vector<FleetBeat>& out,
                                         std::size_t max_items) {
  std::size_t moved = 0;
  FleetBeat fb;
  for (auto& w : workers_) {
    while (moved < max_items && w->out.try_pop(fb)) {
      out.push_back(fb);
      ++moved;
    }
  }
  return moved;
}

std::size_t SessionManager::poll(std::vector<FleetBeat>& out, std::size_t max_items) {
  std::size_t moved = 0;
  while (moved < max_items && overflow_pos_ < overflow_.size()) {
    out.push_back(overflow_[overflow_pos_++]);
    ++moved;
  }
  if (overflow_pos_ == overflow_.size() && overflow_pos_ > 0) {
    overflow_.clear();
    overflow_pos_ = 0;
  }
  return moved + drain_queues(out, max_items - moved);
}

void SessionManager::close() {
  if (!started_) throw std::logic_error("SessionManager: close() before start()");
  if (closed_) return;
  closed_ = true;
  for (auto& w : workers_) {
    WorkItem stop{};
    // A worker parked on a full result queue never pops its work queue;
    // drain on its behalf so the sentinel always lands.
    Backoff backoff;
    while (!w->in.try_push(stop)) {
      if (drain_queues(overflow_, static_cast<std::size_t>(-1)) == 0) backoff.pause();
      else backoff.reset();
    }
  }
}

void SessionManager::join() {
  if (!closed_) throw std::logic_error("SessionManager: join() before close()");
  if (joined_) return;
  Backoff backoff;
  while (active_workers_.load(std::memory_order_acquire) > 0) {
    if (drain_queues(overflow_, static_cast<std::size_t>(-1)) == 0) backoff.pause();
    else backoff.reset();
  }
  for (auto& w : workers_) w->thread.join();
  joined_ = true;
}

bool SessionManager::idle() const {
  for (const auto& s : sessions_)
    if (s->completed.load(std::memory_order_acquire) != s->submitted) return false;
  return true;
}

const std::vector<FleetWorkerStats>& SessionManager::worker_stats() const {
  static const std::vector<FleetWorkerStats> empty;
  if (!joined_) return empty;
  stats_cache_.clear();
  for (const auto& w : workers_) {
    FleetWorkerStats s;
    s.chunks = w->chunks.load(std::memory_order_relaxed);
    s.samples = w->samples.load(std::memory_order_relaxed);
    s.beats = w->beats.load(std::memory_order_relaxed);
    s.push_latency_us = w->push_latency_us;
    stats_cache_.push_back(std::move(s));
  }
  return stats_cache_;
}

const QualitySummary& SessionManager::session_quality(std::uint32_t session) const {
  if (session >= sessions_.size())
    throw std::out_of_range("SessionManager: unknown session id");
  return sessions_[session]->engine.quality_summary();
}

QualitySummary SessionManager::fleet_quality() const {
  QualitySummary total;
  for (const auto& s : sessions_) total.merge(s->engine.quality_summary());
  return total;
}

std::uint64_t SessionManager::total_samples() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->samples.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t SessionManager::total_beats() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->beats.load(std::memory_order_relaxed);
  return n;
}

// ---------------------------------------------------------------------------
// Worker loop: the whole hot path. Single-threaded per session by
// construction; zero steady-state allocation (push_into + reused
// scratch + by-value POD results).
// ---------------------------------------------------------------------------

void SessionManager::worker_loop(Worker& w) {
  WorkItem item;
  Backoff idle_backoff;
  for (;;) {
    if (!w.in.try_pop(item)) {
      idle_backoff.pause();
      continue;
    }
    idle_backoff.reset();
    if (item.session == nullptr) return;  // pool shutdown

    Session& s = *item.session;
    s.beat_scratch.clear();
    switch (item.op) {
      case SessionOp::Finish:
        s.engine.finish_into(s.beat_scratch);
        break;
      case SessionOp::CheckpointOut:
        // Serialize after everything submitted ahead of this item; the
        // release store publishes the blob (and the engine memory) to
        // the pilot, which relays the handoff to the target worker
        // through its work queue.
        s.engine.checkpoint_into(s.migration_blob);
        s.completed.fetch_add(1, std::memory_order_release);
        s.checkpoint_ready.store(true, std::memory_order_release);
        w.chunks.fetch_add(1, std::memory_order_relaxed);
        continue;
      case SessionOp::RestoreIn:
        // The blob is load-bearing: restore() overwrites every carried
        // field from it, so the round-trip tests (not shared memory)
        // are what guarantee the resumed stream's byte identity.
        s.engine.restore(s.migration_blob);
        s.completed.fetch_add(1, std::memory_order_release);
        w.chunks.fetch_add(1, std::memory_order_relaxed);
        continue;
      case SessionOp::Chunk: {
        const std::size_t slot =
            s.completed.load(std::memory_order_relaxed) % cfg_.chunk_slots_per_session;
        const dsp::Sample* base = s.slab.data() + slot * cfg_.max_chunk * 2;
        const bool log = w.push_latency_us.size() < w.push_latency_us.capacity();
        const auto t0 = log ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
        s.engine.push_into(dsp::SignalView(base, item.len),
                           dsp::SignalView(base + cfg_.max_chunk, item.len),
                           s.beat_scratch);
        if (log) {
          const auto t1 = std::chrono::steady_clock::now();
          w.push_latency_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
        w.samples.fetch_add(item.len, std::memory_order_relaxed);
        break;
      }
    }
    // Release the chunk slot before publishing results: the slot's data
    // is fully consumed, and a parked result push must not block reuse.
    s.completed.fetch_add(1, std::memory_order_release);
    w.chunks.fetch_add(1, std::memory_order_relaxed);
    for (const BeatRecord& b : s.beat_scratch) {
      FleetBeat fb{s.id, b, /*end_of_session=*/false, {}};
      Backoff park;  // pilot must poll; park instead of pinning a core
      while (!w.out.try_push(fb)) park.pause();
      w.beats.fetch_add(1, std::memory_order_relaxed);
    }
    if (item.op == SessionOp::Finish) {
      // Terminal record: the session's quality aggregate, emitted exactly
      // once, after the tail beats (not counted in the beat totals).
      FleetBeat fb{s.id, {}, /*end_of_session=*/true, s.engine.quality_summary()};
      Backoff park;
      while (!w.out.try_push(fb)) park.pause();
    }
  }
}

} // namespace icgkit::core
