#include "core/ensemble.h"

#include "dsp/stats.h"

#include <stdexcept>

#include "support/contract.h"

namespace icgkit::core {

EnsembleAverager::EnsembleAverager(dsp::SampleRate fs, const EnsembleConfig& cfg)
    : fs_(fs), cfg_(cfg),
      pre_samples_(static_cast<std::size_t>(cfg.pre_r_s * fs)),
      len_samples_(static_cast<std::size_t>((cfg.pre_r_s + cfg.post_r_s) * fs)) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("EnsembleAverager: fs must be positive"));
  if (cfg.window_beats == 0)
    ICGKIT_THROW(std::invalid_argument("EnsembleAverager: window must be >= 1 beat"));
  if (len_samples_ < 10)
    ICGKIT_THROW(std::invalid_argument("EnsembleAverager: segment too short"));
}

bool EnsembleAverager::add_beat(dsp::SignalView icg, std::size_t r_idx) {
  if (r_idx < pre_samples_) return false;
  const std::size_t start = r_idx - pre_samples_;
  if (start + len_samples_ > icg.size()) return false;

  dsp::Signal beat(icg.begin() + static_cast<dsp::Index>(start),
                   icg.begin() + static_cast<dsp::Index>(start + len_samples_));

  if (window_.size() >= cfg_.min_beats_for_gate) {
    const dsp::Signal tmpl = average();
    if (dsp::pearson(tmpl, beat) < cfg_.min_template_corr) {
      ++rejected_;
      return false;
    }
  }

  window_.push_back(std::move(beat));
  if (window_.size() > cfg_.window_beats) window_.erase(window_.begin());
  return true;
}

dsp::Signal EnsembleAverager::average() const {
  if (window_.empty()) return {};
  dsp::Signal avg(len_samples_, 0.0);
  for (const auto& beat : window_)
    for (std::size_t i = 0; i < len_samples_; ++i) avg[i] += beat[i];
  const double inv = 1.0 / static_cast<double>(window_.size());
  for (auto& v : avg) v *= inv;
  return avg;
}

std::optional<BeatDelineation> EnsembleAverager::delineate_average(
    const IcgDelineator& delineator) const {
  if (window_.size() < cfg_.min_beats_for_gate) return std::nullopt;
  const dsp::Signal avg = average();
  BeatDelineation d = delineator.delineate(avg, pre_samples_, avg.size());
  if (!d.valid) return std::nullopt;
  return d;
}

void EnsembleAverager::reset() {
  window_.clear();
  rejected_ = 0;
}

} // namespace icgkit::core
