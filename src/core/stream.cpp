#include "core/stream.h"

#include "dsp/butterworth.h"
#include "dsp/fir_design.h"

#include <stdexcept>

#include "support/contract.h"

namespace icgkit::core {

dsp::FirCoefficients ecg_cleaner_fir_kernel(dsp::SampleRate fs,
                                            const ecg::EcgFilterConfig& cfg) {
  return dsp::zero_phase_fir_kernel(
      dsp::design_bandpass(cfg.fir_order, cfg.f1_hz, cfg.f2_hz, fs));
}

dsp::FirCoefficients icg_conditioner_lowpass_kernel(dsp::SampleRate fs,
                                                    const IcgFilterConfig& cfg) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("IcgConditionerStage: fs must be positive"));
  return dsp::zero_phase_sos_kernel(
      dsp::butterworth_lowpass(cfg.order, cfg.cutoff_hz, fs), 1e-6);
}

} // namespace icgkit::core
