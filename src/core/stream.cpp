#include "core/stream.h"

#include "dsp/butterworth.h"
#include "dsp/fir_design.h"

namespace icgkit::core {

// ---------------------------------------------------------------------------
// EcgCleanerStage
// ---------------------------------------------------------------------------

EcgCleanerStage::EcgCleanerStage(dsp::SampleRate fs, const ecg::EcgFilterConfig& cfg) {
  if (cfg.enable_morphological_stage) morph_.emplace(fs, cfg.baseline);
  if (cfg.enable_fir_stage)
    fir_.emplace(dsp::zero_phase_fir_kernel(
        dsp::design_bandpass(cfg.fir_order, cfg.f1_hz, cfg.f2_hz, fs)));
}

void EcgCleanerStage::push(dsp::Sample x, dsp::Signal& out) {
  if (!morph_.has_value()) {
    if (fir_.has_value())
      fir_->push(x, out);
    else
      out.push_back(x);
    return;
  }
  if (!fir_.has_value()) {
    morph_->push(x, out);
    return;
  }
  scratch_.clear();
  morph_->push(x, scratch_);
  for (const dsp::Sample v : scratch_) fir_->push(v, out);
}

void EcgCleanerStage::finish(dsp::Signal& out) {
  if (morph_.has_value() && fir_.has_value()) {
    scratch_.clear();
    morph_->finish(scratch_);
    for (const dsp::Sample v : scratch_) fir_->push(v, out);
    fir_->finish(out);
    return;
  }
  if (morph_.has_value()) morph_->finish(out);
  if (fir_.has_value()) fir_->finish(out);
}

void EcgCleanerStage::reset() {
  if (morph_.has_value()) morph_->reset();
  if (fir_.has_value()) fir_->reset();
}

std::size_t EcgCleanerStage::latency() const {
  std::size_t d = 0;
  if (morph_.has_value()) d += morph_->delay();
  if (fir_.has_value()) d += fir_->delay();
  return d;
}

// ---------------------------------------------------------------------------
// IcgConditionerStage
// ---------------------------------------------------------------------------

namespace {
dsp::FirCoefficients icg_lowpass_kernel(dsp::SampleRate fs, const IcgFilterConfig& cfg) {
  if (fs <= 0.0) throw std::invalid_argument("IcgConditionerStage: fs must be positive");
  return dsp::zero_phase_sos_kernel(
      dsp::butterworth_lowpass(cfg.order, cfg.cutoff_hz, fs), 1e-6);
}
} // namespace

IcgConditionerStage::IcgConditionerStage(dsp::SampleRate fs, const IcgFilterConfig& cfg)
    : fs_(fs), lp_(icg_lowpass_kernel(fs, cfg)) {
  if (cfg.highpass_hz > 0.0) {
    dsp::ZeroPhaseHighpassConfig hp_cfg;
    hp_cfg.cutoff_hz = cfg.highpass_hz;
    hp_cfg.order = cfg.highpass_order;
    hp_.emplace(fs, hp_cfg);
  }
}

void IcgConditionerStage::push(dsp::Sample x, dsp::Signal& out) {
  const std::size_t j = z_count_++;
  // ICG = -dZ/dt with the batch derivative() stencil: the aligned central
  // difference needs one sample of lookahead, the first sample uses the
  // forward difference.
  if (j == 1) on_derivative(-(x - prev_[1]) * fs_, out);
  else if (j >= 2) on_derivative(-(x - prev_[0]) * fs_ * 0.5, out);
  prev_[0] = prev_[1];
  prev_[1] = x;
}

void IcgConditionerStage::on_derivative(dsp::Sample d, dsp::Signal& out) {
  lp_scratch_.clear();
  lp_.push(d, lp_scratch_);
  for (const dsp::Sample v : lp_scratch_) on_lowpassed(v, out);
}

void IcgConditionerStage::on_lowpassed(dsp::Sample v, dsp::Signal& out) {
  if (hp_.has_value())
    hp_->push(v, out);
  else
    out.push_back(v);
}

void IcgConditionerStage::finish(dsp::Signal& out) {
  // Trailing derivative sample: batch edge form -(x[n-1] - x[n-2]) * fs.
  if (z_count_ >= 2) on_derivative(-(prev_[1] - prev_[0]) * fs_, out);
  else if (z_count_ == 1) on_derivative(0.0, out);
  lp_scratch_.clear();
  lp_.finish(lp_scratch_);
  for (const dsp::Sample v : lp_scratch_) on_lowpassed(v, out);
  if (hp_.has_value()) hp_->finish(out);
}

void IcgConditionerStage::reset() {
  lp_.reset();
  if (hp_.has_value()) hp_->reset();
  prev_[0] = prev_[1] = 0.0;
  z_count_ = 0;
}

std::size_t IcgConditionerStage::latency() const {
  return 1 + lp_.delay() + (hp_.has_value() ? hp_->delay() : 0);
}

} // namespace icgkit::core
