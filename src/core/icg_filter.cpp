#include "core/icg_filter.h"

#include "dsp/butterworth.h"
#include "dsp/derivative.h"
#include "dsp/filtfilt.h"

#include <stdexcept>

#include "support/contract.h"

namespace icgkit::core {

IcgFilter::IcgFilter(dsp::SampleRate fs, const IcgFilterConfig& cfg)
    : fs_(fs), lp_(dsp::butterworth_lowpass(cfg.order, cfg.cutoff_hz, fs)) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("IcgFilter: fs must be positive"));
  if (cfg.highpass_hz > 0.0) {
    has_hp_ = true;
    hp_ = dsp::butterworth_highpass(cfg.highpass_order, cfg.highpass_hz, fs);
  }
}

dsp::Signal IcgFilter::apply(dsp::SignalView icg) const {
  dsp::Signal y = dsp::filtfilt_sos(lp_, icg);
  if (has_hp_) y = dsp::filtfilt_sos(hp_, y);
  return y;
}

dsp::Signal icg_from_impedance(dsp::SignalView z_ohm, dsp::SampleRate fs) {
  dsp::Signal icg = dsp::derivative(z_ohm, fs);
  for (auto& v : icg) v = -v;
  return icg;
}

} // namespace icgkit::core
