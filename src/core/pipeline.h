// The beat-to-beat processing engine: the composition the paper's Fig 3
// flowchart describes. Raw ECG + impedance in; per-beat characteristic
// points and hemodynamic parameters out.
//
//   ECG  -> morphological baseline removal -> zero-phase FIR band-pass
//        -> Pan-Tompkins R peaks
//   Z    -> ICG = -dZ/dt -> zero-phase Butterworth low-pass 20 Hz
//   per R-R pair -> C/B/X delineation -> quality gate -> PEP/LVET/SV/CO
//
// Two entry points:
//   - BeatPipeline::process           one recording, batch (offline)
//   - StreamingBeatPipeline           chunked feed; emits each beat once,
//     with one-beat latency, the way the embedded firmware reports
//     results beat by beat over the radio.
#pragma once

#include "core/delineator.h"
#include "core/hemodynamics.h"
#include "core/icg_filter.h"
#include "core/quality.h"
#include "ecg/ecg_filter.h"
#include "ecg/pan_tompkins.h"
#include "dsp/types.h"

#include <optional>
#include <vector>

namespace icgkit::core {

struct PipelineConfig {
  ecg::EcgFilterConfig ecg_filter{};
  ecg::PanTompkinsConfig qrs{};
  IcgFilterConfig icg_filter{};
  DelineationConfig delineation{};
  QualityConfig quality{};
  BodyParameters body{};
};

/// One fully-processed beat.
struct BeatRecord {
  BeatDelineation points;
  BeatHemodynamics hemo;
  BeatFlaw flaws = BeatFlaw::None;
  double rr_s = 0.0;
  [[nodiscard]] bool usable() const { return flaws == BeatFlaw::None; }
};

struct PipelineResult {
  std::vector<BeatRecord> beats;
  HemodynamicsSummary summary;       ///< over usable beats only
  double z0_mean_ohm = 0.0;          ///< mean of the impedance trace
  std::size_t r_peak_count = 0;
  dsp::Signal filtered_ecg;          ///< retained for inspection/benches
  dsp::Signal filtered_icg;
};

class BeatPipeline {
 public:
  explicit BeatPipeline(dsp::SampleRate fs, const PipelineConfig& cfg = {});

  /// Processes one synchronized recording (equal-length ECG mV and
  /// impedance Ohm traces).
  [[nodiscard]] PipelineResult process(dsp::SignalView ecg_mv,
                                       dsp::SignalView z_ohm) const;

  [[nodiscard]] dsp::SampleRate sample_rate() const { return fs_; }
  [[nodiscard]] const PipelineConfig& config() const { return cfg_; }

 private:
  dsp::SampleRate fs_;
  PipelineConfig cfg_;
  ecg::EcgFilter ecg_filter_;
  ecg::PanTompkins qrs_;
  IcgFilter icg_filter_;
  IcgDelineator delineator_;
};

/// Chunk-fed wrapper with one-beat emission latency. Internally keeps a
/// bounded window (default 12 s) and re-runs detection on it per chunk;
/// each completed beat is emitted exactly once, in order.
class StreamingBeatPipeline {
 public:
  StreamingBeatPipeline(dsp::SampleRate fs, const PipelineConfig& cfg = {},
                        double window_s = 12.0);

  /// Feeds one synchronized chunk; returns the beats completed by it.
  std::vector<BeatRecord> push(dsp::SignalView ecg_mv, dsp::SignalView z_ohm);

  /// Flushes the final pending beat (end of recording).
  std::vector<BeatRecord> finish();

  [[nodiscard]] std::size_t samples_consumed() const { return consumed_; }

 private:
  std::vector<BeatRecord> drain(bool final_flush);

  dsp::SampleRate fs_;
  BeatPipeline pipeline_;
  std::size_t window_samples_;
  dsp::Signal ecg_buf_;
  dsp::Signal z_buf_;
  std::size_t buf_start_ = 0;   ///< absolute index of buffer sample 0
  std::size_t consumed_ = 0;    ///< absolute samples fed so far
  double last_emitted_r_s_ = -1.0; ///< absolute time of last emitted beat's R
};

} // namespace icgkit::core
