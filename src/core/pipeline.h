// The beat-to-beat processing engine: the composition the paper's Fig 3
// flowchart describes. Raw ECG + impedance in; per-beat characteristic
// points and hemodynamic parameters out.
//
//   ECG  -> morphological baseline removal -> zero-phase FIR band-pass
//        -> Pan-Tompkins R peaks
//   Z    -> ICG = -dZ/dt -> zero-phase Butterworth low-pass 20 Hz
//        -> zero-phase baseline high-pass
//   per R-R pair -> C/B/X delineation -> quality gate -> PEP/LVET/SV/CO
//
// The engine is a true single-pass streaming system: every stage carries
// persistent state (see core/stream.h), each push() does O(chunk) work,
// and only the newly completed R-R intervals are delineated. The batch
// entry point is a thin wrapper that feeds one big chunk:
//
//   - StreamingBeatPipeline   chunked feed; emits each beat exactly once,
//     in order, with a fixed sub-window latency (the stage group delays
//     plus the QRS confirmation latency), the way the embedded firmware
//     reports results beat by beat over the radio.
//   - BeatPipeline::process   one recording, offline; byte-identical
//     BeatRecords to StreamingBeatPipeline at any chunking, because it
//     *is* StreamingBeatPipeline fed a single chunk.
#pragma once

#include "core/delineator.h"
#include "core/hemodynamics.h"
#include "core/icg_filter.h"
#include "core/quality.h"
#include "core/stream.h"
#include "ecg/ecg_filter.h"
#include "ecg/pan_tompkins.h"
#include "dsp/ring_buffer.h"
#include "dsp/types.h"

#include <optional>
#include <utility>
#include <vector>

namespace icgkit::core {

struct PipelineConfig {
  ecg::EcgFilterConfig ecg_filter{};
  ecg::PanTompkinsConfig qrs{};
  IcgFilterConfig icg_filter{};
  DelineationConfig delineation{};
  QualityConfig quality{};
  BodyParameters body{};
};

/// One fully-processed beat.
struct BeatRecord {
  BeatDelineation points;
  BeatHemodynamics hemo;
  BeatFlaw flaws = BeatFlaw::None;
  double rr_s = 0.0;
  [[nodiscard]] bool usable() const { return flaws == BeatFlaw::None; }
};

struct PipelineResult {
  std::vector<BeatRecord> beats;
  HemodynamicsSummary summary;       ///< over usable beats only
  double z0_mean_ohm = 0.0;          ///< mean of the impedance trace
  std::size_t r_peak_count = 0;
  dsp::Signal filtered_ecg;          ///< retained for inspection/benches
  dsp::Signal filtered_icg;
};

/// Chunk-fed incremental engine. Internals:
///
///  - the ECG cleaner, QRS detector and ICG conditioner advance sample by
///    sample with carried state (O(chunk) work per push, no window
///    recomputation);
///  - cleaned ICG and raw impedance are retained in bounded ring buffers
///    (default 12 s) purely as *look-back* for delineation -- they are
///    never reprocessed;
///  - a beat (R_i, R_{i+1}) is delineated exactly once, as soon as
///    R_{i+1} is confirmed and the aligned ICG covers it. Its emitted
///    indices are absolute sample positions in the fed stream.
///
/// The output is invariant to chunk size: any segmentation of the same
/// recording yields byte-identical BeatRecords (the chunking only decides
/// which push() call returns them). Beats whose samples have already left
/// the look-back window (window smaller than an R-R interval plus the
/// stage latencies) are emitted flagged InvalidDelineation with all
/// points clamped to their R index, never referencing trimmed samples.
class StreamingBeatPipeline {
 public:
  StreamingBeatPipeline(dsp::SampleRate fs, const PipelineConfig& cfg = {},
                        double window_s = 12.0);

  /// Feeds one synchronized chunk; returns the beats completed by it.
  std::vector<BeatRecord> push(dsp::SignalView ecg_mv, dsp::SignalView z_ohm);

  /// Allocation-free form of push(): appends completed beats to `out`
  /// (which is not cleared). With a caller-reused `out`, a warmed-up
  /// session does zero heap allocation per push — the property the fleet
  /// hot path relies on (verified by the allocation-probe test).
  void push_into(dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                 std::vector<BeatRecord>& out);

  /// Flushes the stage tails and any pending beats (end of recording).
  std::vector<BeatRecord> finish();

  /// Allocation-free form of finish(): appends to `out`.
  void finish_into(std::vector<BeatRecord>& out);

  [[nodiscard]] std::size_t samples_consumed() const { return consumed_; }
  [[nodiscard]] std::size_t r_peak_count() const { return r_peak_count_; }
  [[nodiscard]] std::size_t window_samples() const { return window_samples_; }
  /// Running mean of the impedance trace consumed so far.
  [[nodiscard]] double z_mean_ohm() const;

  /// Records the aligned filtered ECG/ICG streams (used by the batch
  /// wrapper to fill PipelineResult; off by default to keep streaming
  /// memory bounded).
  void enable_capture() { capture_ = true; }
  [[nodiscard]] const dsp::Signal& captured_ecg() const { return captured_ecg_; }
  [[nodiscard]] const dsp::Signal& captured_icg() const { return captured_icg_; }

 private:
  void ingest(dsp::Sample ecg_mv, dsp::Sample z_ohm, std::vector<BeatRecord>& out);
  void enqueue_beat(std::size_t r, std::size_t r_next);
  void drain_ready(std::vector<BeatRecord>& out);
  [[nodiscard]] BeatRecord make_beat(std::size_t r, std::size_t r_next);
  [[nodiscard]] double beat_z0(std::size_t r, std::size_t r_next) const;

  dsp::SampleRate fs_;
  PipelineConfig cfg_;
  std::size_t window_samples_;

  EcgCleanerStage ecg_stage_;
  IcgConditionerStage icg_stage_;
  ecg::OnlinePanTompkins qrs_;
  IcgDelineator delineator_;

  dsp::RingBuffer<dsp::Sample> icg_ring_;  ///< aligned cleaned ICG look-back
  dsp::RingBuffer<dsp::Sample> z_ring_;    ///< raw impedance look-back
  std::size_t icg_count_ = 0;   ///< aligned ICG samples produced
  std::size_t consumed_ = 0;    ///< absolute samples fed so far
  double z_sum_ = 0.0;

  std::optional<std::size_t> last_r_;
  /// Beats awaiting their aligned ICG, in fixed storage (no per-push
  /// allocation). Capacity covers the refractory-bounded R rate over the
  /// full look-back window with headroom; exceeding it throws rather
  /// than silently dropping a beat.
  dsp::RingBuffer<std::pair<std::size_t, std::size_t>> pending_beats_;
  std::size_t r_peak_count_ = 0;

  bool capture_ = false;
  dsp::Signal captured_ecg_, captured_icg_;
  dsp::Signal ecg_scratch_, icg_scratch_, beat_scratch_;
  std::vector<std::size_t> r_scratch_;
  DelineationScratch delin_scratch_;
};

class BeatPipeline {
 public:
  explicit BeatPipeline(dsp::SampleRate fs, const PipelineConfig& cfg = {});

  /// Processes one synchronized recording (equal-length ECG mV and
  /// impedance Ohm traces). Thin wrapper: feeds the whole recording as a
  /// single chunk through StreamingBeatPipeline and finish(), so batch
  /// and streaming BeatRecords are byte-identical by construction.
  [[nodiscard]] PipelineResult process(dsp::SignalView ecg_mv,
                                       dsp::SignalView z_ohm) const;

  [[nodiscard]] dsp::SampleRate sample_rate() const { return fs_; }
  [[nodiscard]] const PipelineConfig& config() const { return cfg_; }

 private:
  dsp::SampleRate fs_;
  PipelineConfig cfg_;
};

} // namespace icgkit::core
