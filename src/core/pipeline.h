// The beat-to-beat processing engine: the composition the paper's Fig 3
// flowchart describes. Raw ECG + impedance in; per-beat characteristic
// points and hemodynamic parameters out.
//
//   ECG  -> morphological baseline removal -> zero-phase FIR band-pass
//        -> Pan-Tompkins R peaks
//   Z    -> ICG = -dZ/dt -> zero-phase Butterworth low-pass 20 Hz
//        -> zero-phase baseline high-pass
//   per R-R pair -> C/B/X delineation -> quality gate -> PEP/LVET/SV/CO
//
// The engine is a true single-pass streaming system: every stage carries
// persistent state (see core/stream.h), each push() does O(chunk) work,
// and only the newly completed R-R intervals are delineated. It is also
// generic over the numeric backend (dsp/backend.h):
//
//   - StreamingBeatPipeline        the double-precision reference engine
//     (chunked feed; emits each beat exactly once, in order, with a fixed
//     sub-window latency, the way the embedded firmware reports results
//     beat by beat over the radio).
//   - FixedStreamingBeatPipeline   the same engine instantiated with the
//     Q31 backend: the whole sample-rate front end (ECG cleaning, QRS
//     detection, ICG conditioning) runs in the firmware's Q1.31 integer
//     arithmetic under a per-stage scaling policy (dsp::Q31ScalingPolicy)
//     and converts to double exactly once per completed R-R window, at
//     the delineation boundary -- the beat-rate tail (delineator, quality
//     gate, hemodynamics) stays in double for both backends.
//   - BeatPipeline::process        one recording, offline; byte-identical
//     BeatRecords to StreamingBeatPipeline at any chunking, because it
//     *is* StreamingBeatPipeline fed a single chunk.
//
// Internally the engine is two halves joined at the feature boundary:
// the *stage front* (ECG cleaner, QRS detector, ICG conditioner — the
// data-parallel sample-rate chain) and the BeatAssembler (look-back
// rings, contact-gap recovery, delineation, quality, hemodynamics,
// ensemble — the per-session beat-rate tail). core::SessionBatch reuses
// the assembler per lane under a SIMD-batched front, which is why it is
// a named component rather than pipeline-private state.
#pragma once

#include "core/checkpoint.h"
#include "core/delineator.h"
#include "core/ensemble.h"
#include "core/hemodynamics.h"
#include "core/icg_filter.h"
#include "core/quality.h"
#include "core/stream.h"
#include "ecg/ecg_filter.h"
#include "ecg/pan_tompkins.h"
#include "dsp/backend.h"
#include "dsp/ring_buffer.h"
#include "dsp/stats.h"
#include "dsp/types.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "support/contract.h"

namespace icgkit::core {

struct PipelineConfig {
  ecg::EcgFilterConfig ecg_filter{};
  ecg::PanTompkinsConfig qrs{};
  IcgFilterConfig icg_filter{};
  DelineationConfig delineation{};
  QualityConfig quality{};
  BodyParameters body{};
  /// Optional ensemble-averaging stage: when enabled, each accepted beat
  /// is folded into a correlation-gated R-aligned template and the
  /// emitted BeatRecords carry the template's delineation alongside the
  /// single-beat one (ensemble_points). Off by default: the stage buffers
  /// beat segments, so it trades the zero-steady-state-allocation
  /// guarantee for noise robustness.
  bool enable_ensemble = false;
  EnsembleConfig ensemble{};
};

/// One fully-processed beat.
struct BeatRecord {
  BeatDelineation points;
  BeatHemodynamics hemo;
  BeatFlaw flaws = BeatFlaw::None;
  double rr_s = 0.0;
  /// Signal-integrity metrics of this beat's R-R window (SNR, saturation,
  /// flatline); the source of the LowSnr/Saturated/Flatline flaw bits.
  SignalQuality signal;
  /// Delineation of the running ensemble template at this beat (absolute
  /// indices, like `points`). Only populated when the pipeline's ensemble
  /// stage is enabled and the template has enough beats.
  std::optional<BeatDelineation> ensemble_points;
  [[nodiscard]] bool usable() const { return flaws == BeatFlaw::None; }
};

struct PipelineResult {
  std::vector<BeatRecord> beats;
  HemodynamicsSummary summary;       ///< over usable beats only
  double z0_mean_ohm = 0.0;          ///< mean of the impedance trace
  std::size_t r_peak_count = 0;
  dsp::Signal filtered_ecg;          ///< retained for inspection/benches
  dsp::Signal filtered_icg;
};

namespace detail {
// Pending beats are bounded by the configured Pan-Tompkins refractory
// period: R peaks arrive at most once per refractory interval, and a
// pending beat drains as soon as its aligned ICG catches up (a latency
// of well under a second), so the depth is tiny in practice. Size the
// fixed ring for the pathological ceiling — one beat per refractory
// interval across the whole look-back window — plus headroom.
inline std::size_t pending_capacity(std::size_t window_samples, dsp::SampleRate fs,
                                    double refractory_s) {
  const std::size_t refractory = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::max(0.0, refractory_s) * fs));
  return std::max<std::size_t>(64, window_samples / refractory + 16);
}

// Per-raw-sample signal-integrity mark bits (see StreamingBeatPipeline's
// marks ring). Computed from the incoming *double* samples before any
// backend quantization, so the double and Q31 engines agree bit for bit
// on flatline/saturation verdicts.
inline constexpr std::uint8_t kEcgFlat = 1u << 0;
inline constexpr std::uint8_t kZFlat = 1u << 1;
inline constexpr std::uint8_t kEcgSat = 1u << 2;
inline constexpr std::uint8_t kZSat = 1u << 3;
} // namespace detail

/// The per-session beat-rate tail of the streaming engine: look-back
/// rings, the contact-gap state machine and quality-adaptive recovery,
/// pending-beat scheduling, delineation, the quality gate, hemodynamics
/// and the optional ensemble stage. Everything downstream of the
/// sample-rate stage front, with scalar (per-session) control flow.
///
/// BasicStreamingBeatPipeline owns one assembler; core::SessionBatch
/// owns W of them (one per SIMD lane) behind a shared batched front --
/// the assembler is exactly the state whose control flow diverges per
/// session, so batching stops at its boundary.
///
/// Serialization is exposed as one body per checkpoint section (RING /
/// BEAT / GAPS / QSUM / ENSB); the pipeline wraps them in its section
/// framing, keeping the v1 wire layout byte-identical to the pre-split
/// engine.
template <typename B>
class BeatAssembler {
 public:
  using sample_t = typename B::sample_t;

  BeatAssembler(dsp::SampleRate fs, const PipelineConfig& cfg,
                std::size_t window_samples, double z_scale, double icg_scale,
                double ecg_rail_mv, double z_rail_ohm, std::size_t icg_latency)
      : fs_(fs), quality_(cfg.quality), body_(cfg.body),
        window_samples_(window_samples), z_scale_(z_scale), icg_scale_(icg_scale),
        delineator_(fs, cfg.delineation),
        ecg_rail_mv_(ecg_rail_mv), z_rail_ohm_(z_rail_ohm),
        icg_latency_(icg_latency),
        dropout_samples_(std::max<std::size_t>(
            2, static_cast<std::size_t>(std::max(0.0, cfg.quality.dropout_reset_s) * fs))),
        icg_ring_(window_samples_),
        z_ring_(window_samples_),
        marks_(window_samples_),
        pending_beats_(detail::pending_capacity(window_samples_, fs, cfg.qrs.refractory_s)) {
    // Memory-pool invariant: pre-size the per-beat buffers for any
    // physiologically plausible beat (3 s covers HR down to 20 bpm) so a
    // warmed-up session never allocates on push. Longer beats — artifact
    // dropouts — still work, at the cost of a one-off reallocation.
    const std::size_t max_beat =
        std::min(window_samples_, static_cast<std::size_t>(3.0 * fs));
    beat_scratch_.reserve(max_beat);
    delin_scratch_.reserve(max_beat);
    if (cfg.enable_ensemble) {
      ensemble_.emplace(fs, cfg.ensemble);
      ens_scratch_.reserve(ensemble_->segment_samples());
      // Worst-case folds in flight: one R per refractory interval across
      // the post window (same reasoning as pending_capacity above), so
      // the queue never silently overwrites a pending fold.
      ens_pending_ = dsp::RingBuffer<std::size_t>(detail::pending_capacity(
          ensemble_->segment_samples(), fs, cfg.qrs.refractory_s));
    }
  }

  /// Consumes one raw sample pair: classifies it into the marks ring,
  /// advances the contact-gap state machine (invoking `qrs_soft_reset`
  /// when an ECG gap closes and recovery is enabled), and accounts the
  /// raw impedance sample `zq` into the look-back ring and running sum.
  template <typename SoftResetFn>
  void on_raw_sample(double ecg_mv, double z_ohm, sample_t zq,
                     SoftResetFn&& qrs_soft_reset) {
    track_signal_marks(ecg_mv, z_ohm, qrs_soft_reset);
    z_ring_.push(zq);
    z_sum_ = B::acc_add(z_sum_, zq);
    ++consumed_;
  }

  /// Accounts one aligned conditioned-ICG sample into the look-back ring.
  void on_icg_sample(sample_t v) {
    icg_ring_.push(v);
    ++icg_count_;
  }

  /// Folds any queued ensemble segments whose post window has completed
  /// (no-op when the ensemble stage is off or the queue is empty).
  void maybe_drain_ensemble() {
    if (ensemble_.has_value() && !ens_pending_.empty()) drain_ensemble();
  }

  /// Registers a confirmed R peak; pairs it with the previous one into a
  /// pending beat.
  void on_r_peak(std::size_t r) {
    ++r_peak_count_;
    if (last_r_.has_value()) enqueue_beat(*last_r_, r);
    last_r_ = r;
  }

  /// Emits every pending beat whose aligned ICG is now complete. Called
  /// per sample so the emission point (and thus the ring-buffer state it
  /// reads) is identical however the input was chunked.
  void drain_ready(std::vector<BeatRecord>& out) {
    while (!pending_beats_.empty() && icg_count_ >= pending_beats_.front().second) {
      const auto [r, r_next] = pending_beats_.front();
      pending_beats_.pop();
      out.push_back(make_beat(r, r_next));
    }
  }

  [[nodiscard]] std::size_t samples_consumed() const { return consumed_; }
  [[nodiscard]] std::size_t icg_count() const { return icg_count_; }
  [[nodiscard]] std::size_t r_peak_count() const { return r_peak_count_; }
  [[nodiscard]] std::size_t window_samples() const { return window_samples_; }
  [[nodiscard]] const QualitySummary& quality_summary() const { return summary_; }
  [[nodiscard]] bool in_dropout() const { return ecg_gap_ || z_gap_; }

  /// Running mean of the impedance trace consumed so far.
  [[nodiscard]] double z_mean_ohm() const {
    if (consumed_ == 0) return 0.0;
    if constexpr (B::kFixed)
      return B::to_real(B::mean(z_sum_, consumed_)) * z_scale_;
    else
      return z_sum_ / static_cast<double>(consumed_);
  }

  // -- checkpoint section bodies (wrapped by the owner's framing) -------
  template <typename W>
  void save_ring_body(W& w) const {
    icg_ring_.save_state(w);
    z_ring_.save_state(w);
    marks_.save_state(w);
    w.u64(icg_count_);
    w.u64(consumed_);
    w.value(z_sum_);
  }
  template <typename R>
  void load_ring_body(R& r) {
    icg_ring_.load_state(r, "StreamingBeatPipeline");
    z_ring_.load_state(r, "StreamingBeatPipeline");
    marks_.load_state(r, "StreamingBeatPipeline");
    icg_count_ = r.u64();
    consumed_ = r.u64();
    z_sum_ = r.template value<typename B::acc_t>();
  }

  template <typename W>
  void save_beat_body(W& w) const {
    w.boolean(last_r_.has_value());
    if (last_r_.has_value()) w.u64(*last_r_);
    save_pair_ring(w, pending_beats_);
    w.u64(r_peak_count_);
  }
  template <typename R>
  void load_beat_body(R& r) {
    if (r.boolean()) last_r_ = r.u64();
    else last_r_.reset();
    load_pair_ring(r, pending_beats_);
    r_peak_count_ = r.u64();
  }

  template <typename W>
  void save_gaps_body(W& w) const {
    w.f64(prev_ecg_raw_);
    w.f64(prev_z_raw_);
    w.boolean(have_prev_raw_);
    w.u64(ecg_flat_run_);
    w.u64(z_flat_run_);
    w.boolean(ecg_gap_);
    w.boolean(z_gap_);
    save_pair_ring(w, gap_spans_);
  }
  template <typename R>
  void load_gaps_body(R& r) {
    prev_ecg_raw_ = r.f64();
    prev_z_raw_ = r.f64();
    have_prev_raw_ = r.boolean();
    ecg_flat_run_ = r.u64();
    z_flat_run_ = r.u64();
    ecg_gap_ = r.boolean();
    z_gap_ = r.boolean();
    load_pair_ring(r, gap_spans_);
  }

  template <typename W>
  void save_qsum_body(W& w) const {
    w.u64(summary_.beats);
    w.u64(summary_.usable);
    for (const std::uint64_t c : summary_.flaw_counts) w.u64(c);
    w.u64(summary_.ecg_dropouts);
    w.u64(summary_.z_dropouts);
    w.u64(summary_.detector_resets);
    w.u64(summary_.ensemble_folds_skipped);
    w.u64(summary_.snr_beats);
    w.f64(summary_.sum_snr_db);
    w.f64(summary_.min_snr_db);
  }
  template <typename R>
  void load_qsum_body(R& r) {
    summary_.beats = r.u64();
    summary_.usable = r.u64();
    for (std::uint64_t& c : summary_.flaw_counts) c = r.u64();
    summary_.ecg_dropouts = r.u64();
    summary_.z_dropouts = r.u64();
    summary_.detector_resets = r.u64();
    summary_.ensemble_folds_skipped = r.u64();
    summary_.snr_beats = r.u64();
    summary_.sum_snr_db = r.f64();
    summary_.min_snr_db = r.f64();
  }

  template <typename W>
  void save_ensb_body(W& w) const {
    w.boolean(ensemble_.has_value());
    if (ensemble_.has_value()) {
      ensemble_->save_state(w);
      ens_pending_.save_state(w);
    }
  }
  template <typename R>
  void load_ensb_body(R& r) {
    if (r.boolean() != ensemble_.has_value())
      r.fail("StreamingBeatPipeline: ensemble-stage layout mismatch");
    if (ensemble_.has_value()) {
      ensemble_->load_state(r);
      ens_pending_.load_state(r, "StreamingBeatPipeline ensemble queue");
    }
  }

 private:
  // Checkpoint helpers for the index-pair rings (sample/mark/index rings
  // serialize through dsp::RingBuffer::save_state/load_state directly).
  template <typename W>
  static void save_pair_ring(W& w,
                             const dsp::RingBuffer<std::pair<std::size_t, std::size_t>>& ring) {
    w.u64(ring.capacity());
    w.u64(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i) {
      w.u64(ring.at(i).first);
      w.u64(ring.at(i).second);
    }
  }
  template <typename R>
  static void load_pair_ring(R& r,
                             dsp::RingBuffer<std::pair<std::size_t, std::size_t>>& ring) {
    if (r.u64() != ring.capacity())
      r.fail("StreamingBeatPipeline: pair-ring capacity mismatch");
    const std::size_t n = r.u64();
    if (n > ring.capacity()) r.fail("StreamingBeatPipeline: pair-ring overflow");
    ring.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t a = r.u64();
      const std::size_t b = r.u64();
      ring.push({a, b});
    }
  }

  [[nodiscard]] double icg_real(sample_t v) const {
    if constexpr (B::kFixed) return B::to_real(v) * icg_scale_;
    else return v;
  }

  /// Classifies one raw sample pair (flat? saturated?) into the marks
  /// ring and advances the contact-gap state machine. Runs on the
  /// incoming doubles before backend quantization, per sample, so the
  /// verdicts are backend-identical and chunk-size invariant.
  template <typename SoftResetFn>
  void track_signal_marks(double ecg_mv, double z_ohm, SoftResetFn&& qrs_soft_reset) {
    std::uint8_t m = 0;
    if (have_prev_raw_) {
      if (std::abs(ecg_mv - prev_ecg_raw_) <= quality_.flatline_epsilon_mv)
        m |= detail::kEcgFlat;
      if (std::abs(z_ohm - prev_z_raw_) <= quality_.flatline_epsilon_ohm)
        m |= detail::kZFlat;
    }
    const double margin = quality_.saturation_margin;
    if (std::abs(ecg_mv) >= margin * ecg_rail_mv_) m |= detail::kEcgSat;
    if (std::abs(z_ohm) >= margin * z_rail_ohm_) m |= detail::kZSat;
    marks_.push(m);
    prev_ecg_raw_ = ecg_mv;
    prev_z_raw_ = z_ohm;
    have_prev_raw_ = true;
    update_gap((m & detail::kEcgFlat) != 0, ecg_flat_run_, ecg_gap_, /*is_ecg=*/true,
               qrs_soft_reset);
    update_gap((m & detail::kZFlat) != 0, z_flat_run_, z_gap_, /*is_ecg=*/false,
               qrs_soft_reset);
  }

  /// Contact-gap state machine for one channel. On the first sample after
  /// a gap ends, the quality-adaptive recovery fires: an ECG gap poisons
  /// the QRS detector's adaptive thresholds, so they are soft-reset and
  /// relearned from post-gap data only (and the open R is dropped so no
  /// R-R pair spans the gap); an impedance gap poisons the ensemble
  /// template, so the gap's span (smeared by the ICG chain's kernel
  /// footprint) is recorded and every ensemble fold overlapping it is
  /// skipped — the template keeps its clean pre-gap beats and resumes
  /// with clean post-gap ones. Filter state is never touched — linear
  /// stages flush a gap by themselves and resetting them would break the
  /// stream's sample alignment. (This is also what makes the SIMD batch
  /// front mask-free: a lane in a gap keeps filtering like every other
  /// lane, and only its assembler/detector-tail state diverges.)
  template <typename SoftResetFn>
  void update_gap(bool flat, std::size_t& run, bool& gap, bool is_ecg,
                  SoftResetFn&& qrs_soft_reset) {
    if (flat) {
      ++run;
      if (!gap && run >= dropout_samples_) {
        gap = true;
        if (is_ecg) ++summary_.ecg_dropouts;
        else ++summary_.z_dropouts;
      }
      return;
    }
    if (gap) {
      gap = false;
      if (quality_.enable_recovery) {
        if (is_ecg) {
          qrs_soft_reset();
          last_r_.reset();
          ++summary_.detector_resets;
        } else {
          // The flat span is [consumed_ - run, consumed_); the zero-phase
          // ICG kernels smear its edge transients by their look-back, so
          // quarantine that margin on both sides.
          const std::size_t margin = icg_latency_;
          const std::size_t begin =
              consumed_ > run + margin ? consumed_ - run - margin : 0;
          gap_spans_.push({begin, consumed_ + margin});
        }
      }
    }
    run = 0;
  }

  /// True when the ensemble segment [begin, end) overlaps a recorded
  /// impedance contact gap (quarantined ICG samples).
  [[nodiscard]] bool overlaps_gap_span(std::size_t begin, std::size_t end) const {
    for (std::size_t i = 0; i < gap_spans_.size(); ++i) {
      const auto& [b, e] = gap_spans_.at(i);
      if (b < end && begin < e) return true;
    }
    return false;
  }

  void enqueue_beat(std::size_t r, std::size_t r_next) {
    if (pending_beats_.full())
      ICGKIT_THROW(std::runtime_error("StreamingBeatPipeline: pending-beat ring overflow"));
    pending_beats_.push({r, r_next});
  }

  [[nodiscard]] BeatRecord make_beat(std::size_t r, std::size_t r_next) {
    BeatRecord rec;
    rec.rr_s = static_cast<double>(r_next - r) / fs_;

    const std::size_t oldest_icg = icg_count_ - icg_ring_.size();
    if (r < oldest_icg) {
      // The look-back window no longer covers this beat (window smaller
      // than the R-R interval plus stage latencies). Emit it flagged, with
      // every point clamped to its R so no index references trimmed data.
      rec.points.r = rec.points.b = rec.points.b0 = rec.points.c = rec.points.x = r;
      rec.flaws = BeatFlaw::InvalidDelineation;
      // No window to measure: keep this beat out of the SNR statistics.
      summary_.tally(rec.flaws, rec.signal, /*snr_measured=*/false);
      return rec;
    }

    // The one per-beat numeric boundary: the R-R window of conditioned
    // ICG leaves the backend's sample domain here (identity for the
    // double backend, counts -> Ohm/s for Q31) and the shared double
    // delineation/quality/hemodynamics tail takes over. The zero-copy
    // segment view keeps the fill a flat (auto-vectorizable) pass — the
    // conversion runs exactly once per beat, and both delineation and
    // the SNR measurement read the converted window from beat_scratch_.
    beat_scratch_.clear();
    const auto beat_seg = icg_ring_.segments(r - oldest_icg, r_next - oldest_icg);
    for (const sample_t v : beat_seg.first) beat_scratch_.push_back(icg_real(v));
    for (const sample_t v : beat_seg.second) beat_scratch_.push_back(icg_real(v));
    rec.points = delineator_.delineate(beat_scratch_, 0, beat_scratch_.size(), delin_scratch_);
    rec.points.r += r;
    rec.points.b += r;
    rec.points.b0 += r;
    rec.points.c += r;
    rec.points.x += r;
    rec.flaws = assess_beat(rec.points, rec.rr_s, fs_, quality_);
    rec.signal = measure_signal_quality(r, r_next);
    rec.flaws = rec.flaws | assess_signal(rec.signal, quality_);
    rec.hemo = compute_beat_hemodynamics(rec.points, rec.rr_s, beat_z0(r, r_next), fs_,
                                         body_);
    if (ensemble_.has_value()) attach_ensemble(rec, r);
    summary_.tally(rec.flaws, rec.signal);
    return rec;
  }

  /// Signal-integrity metrics of the beat window [r, r_next):
  /// saturation/flatline fractions from the raw-sample marks ring, SNR as
  /// peak |ICG| against the diastolic floor (RMS of the final third of
  /// the R-R window, where the clean ICG has decayed to the O-wave
  /// recovery). Uses beat_scratch_, which make_beat has just filled.
  [[nodiscard]] SignalQuality measure_signal_quality(std::size_t r,
                                                     std::size_t r_next) const {
    SignalQuality q;
    const std::size_t oldest_mark = consumed_ - marks_.size();
    const std::size_t lo = std::max(r, oldest_mark);
    const std::size_t hi = std::min(r_next, consumed_);
    if (lo < hi) {
      std::size_t flat = 0, sat = 0;
      const auto seg = marks_.segments(lo - oldest_mark, hi - oldest_mark);
      for (const std::span<const std::uint8_t> s : {seg.first, seg.second}) {
        for (const std::uint8_t m : s) {
          if ((m & (detail::kEcgFlat | detail::kZFlat)) != 0) ++flat;
          if ((m & (detail::kEcgSat | detail::kZSat)) != 0) ++sat;
        }
      }
      const auto n = static_cast<double>(hi - lo);
      q.flatline_fraction = static_cast<double>(flat) / n;
      q.saturation_fraction = static_cast<double>(sat) / n;
    }
    const std::size_t len = beat_scratch_.size();
    if (len >= 8) {
      double peak = 0.0;
      for (const double v : beat_scratch_) peak = std::max(peak, std::abs(v));
      const std::size_t tail = 2 * len / 3;
      const double noise =
          dsp::rms(dsp::SignalView(beat_scratch_.data() + tail, len - tail));
      q.snr_db = noise > 1e-12 * peak && noise > 0.0
                     ? std::min(99.0, 20.0 * std::log10(peak / noise))
                     : 99.0;
      if (peak <= 0.0) q.snr_db = 0.0;
    }
    return q;
  }

  /// Optional ensemble stage: fold this beat's R-aligned segment into the
  /// running template (correlation-gated) and attach the template's
  /// delineation, rebased to absolute indices around this beat's R.
  ///
  /// The segment extends post_r_s past R, which a beat emitted at its
  /// closing R has only when RR >= post_r_s. When it does not (fast
  /// heart rates), the R is queued and folded by drain_ensemble() as
  /// soon as the ICG stream reaches R + post; the beat's attached
  /// template then simply lags that beat by one fold, instead of the
  /// stage silently going inert above ~100 bpm.
  void attach_ensemble(BeatRecord& rec, std::size_t r) {
    const std::size_t pre = ensemble_->r_offset();
    if (r < pre) return;
    if (!try_fold_ensemble(r))
      ens_pending_.push(r); // post window not complete yet; fold later
    if (auto d = ensemble_->delineate_average(delineator_); d.has_value()) {
      const std::size_t base = r - pre; // template sample 0 in absolute indices
      d->r += base;
      d->b += base;
      d->b0 += base;
      d->c += base;
      d->x += base;
      rec.ensemble_points = *d;
    }
  }

  /// Folds every queued R whose post window has completed (FIFO; stops
  /// at the first one still waiting for ICG samples).
  void drain_ensemble() {
    while (!ens_pending_.empty()) {
      if (!try_fold_ensemble(ens_pending_.front())) return;
      ens_pending_.pop();
    }
  }

  /// Adds the segment around `r` to the averager if its post window has
  /// completed. Returns false only when more ICG is still to come (the
  /// one retryable condition); a segment whose start already scrolled
  /// out of the look-back ring is unrecoverable and reported handled, as
  /// is a segment quarantined by a recorded contact gap (the
  /// template-poisoning protection — see update_gap).
  bool try_fold_ensemble(std::size_t r) {
    const std::size_t pre = ensemble_->r_offset();
    const std::size_t len = ensemble_->segment_samples();
    if (r < pre) return true;
    if (r - pre + len > icg_count_) return false;
    const std::size_t oldest_icg = icg_count_ - icg_ring_.size();
    if (r - pre < oldest_icg) return true;
    if (overlaps_gap_span(r - pre, r - pre + len)) {
      ++summary_.ensemble_folds_skipped;
      return true;
    }
    ens_scratch_.clear();
    const auto seg =
        icg_ring_.segments(r - pre - oldest_icg, r - pre + len - oldest_icg);
    for (const sample_t v : seg.first) ens_scratch_.push_back(icg_real(v));
    for (const sample_t v : seg.second) ens_scratch_.push_back(icg_real(v));
    ensemble_->add_beat(ens_scratch_, pre);
    return true;
  }

  [[nodiscard]] double beat_z0(std::size_t r, std::size_t r_next) const {
    // Base impedance during the beat: mean of the raw trace over the R-R
    // interval (the firmware analogue of the batch recording mean; local,
    // deterministic, and available at emission time).
    const std::size_t oldest_z = consumed_ - z_ring_.size();
    const std::size_t lo = std::max(r, oldest_z);
    const std::size_t hi = std::min(r_next, consumed_);
    if (lo >= hi) return z_mean_ohm();
    typename B::acc_t acc = B::acc_zero();
    const auto seg = z_ring_.segments(lo - oldest_z, hi - oldest_z);
    for (const sample_t v : seg.first) acc = B::acc_add(acc, v);
    for (const sample_t v : seg.second) acc = B::acc_add(acc, v);
    if constexpr (B::kFixed)
      return B::to_real(B::mean(acc, hi - lo)) * z_scale_;
    else
      return acc / static_cast<double>(hi - lo);
  }

  dsp::SampleRate fs_;
  QualityConfig quality_;
  BodyParameters body_;
  std::size_t window_samples_;
  double z_scale_, icg_scale_;      ///< Q31 full scales (1 for double)
  IcgDelineator delineator_;

  double ecg_rail_mv_, z_rail_ohm_; ///< acquisition rails (saturation detector)
  std::size_t icg_latency_;         ///< ICG chain look-back (gap-span smear margin)
  std::size_t dropout_samples_;     ///< flat run length that counts as a gap

  dsp::RingBuffer<sample_t> icg_ring_;  ///< aligned cleaned ICG look-back
  dsp::RingBuffer<sample_t> z_ring_;    ///< raw impedance look-back
  /// Per-raw-sample integrity marks (detail::kEcgFlat...), same timeline
  /// and capacity as the raw look-back.
  dsp::RingBuffer<std::uint8_t> marks_;
  std::size_t icg_count_ = 0;   ///< aligned ICG samples produced
  std::size_t consumed_ = 0;    ///< absolute samples fed so far
  typename B::acc_t z_sum_ = B::acc_zero();

  std::optional<std::size_t> last_r_;
  /// Beats awaiting their aligned ICG, in fixed storage (no per-push
  /// allocation). Capacity covers the refractory-bounded R rate over the
  /// full look-back window with headroom; exceeding it throws rather
  /// than silently dropping a beat.
  dsp::RingBuffer<std::pair<std::size_t, std::size_t>> pending_beats_;
  std::size_t r_peak_count_ = 0;

  // Contact-gap state machine (see track_signal_marks / update_gap).
  double prev_ecg_raw_ = 0.0, prev_z_raw_ = 0.0;
  bool have_prev_raw_ = false;
  std::size_t ecg_flat_run_ = 0, z_flat_run_ = 0;
  bool ecg_gap_ = false, z_gap_ = false;
  /// Recent impedance contact-gap spans (input-timeline indices, smeared
  /// by the ICG kernel footprint); ensemble folds overlapping one are
  /// skipped. Bounded: older spans scroll out of the look-back anyway.
  dsp::RingBuffer<std::pair<std::size_t, std::size_t>> gap_spans_{16};
  QualitySummary summary_;

  dsp::Signal beat_scratch_;
  DelineationScratch delin_scratch_;
  std::optional<EnsembleAverager> ensemble_;
  dsp::Signal ens_scratch_;
  /// R indices whose ensemble segment still awaits its post window
  /// (RR < post_r_s, i.e. fast heart rates). Re-sized in the constructor
  /// for the worst case (one R per refractory across the post window)
  /// when the ensemble stage is enabled.
  dsp::RingBuffer<std::size_t> ens_pending_{1};
};

/// Chunk-fed incremental engine, generic over the numeric backend.
/// Internals:
///
///  - the ECG cleaner, QRS detector and ICG conditioner advance sample by
///    sample with carried state (O(chunk) work per push, no window
///    recomputation);
///  - cleaned ICG and raw impedance are retained in bounded ring buffers
///    (default 12 s) purely as *look-back* for delineation -- they are
///    never reprocessed;
///  - a beat (R_i, R_{i+1}) is delineated exactly once, as soon as
///    R_{i+1} is confirmed and the aligned ICG covers it. Its emitted
///    indices are absolute sample positions in the fed stream.
///
/// The output is invariant to chunk size: any segmentation of the same
/// recording yields byte-identical BeatRecords (the chunking only decides
/// which push() call returns them). Beats whose samples have already left
/// the look-back window (window smaller than an R-R interval plus the
/// stage latencies) are emitted flagged InvalidDelineation with all
/// points clamped to their R index, never referencing trimmed samples.
///
/// With the Q31 backend, push() quantizes each incoming double sample to
/// Q1.31 against the scaling policy's full scales (the ADC boundary a
/// real firmware has anyway), runs the whole sample-rate chain in integer
/// arithmetic, and converts each completed R-R window of ICG counts back
/// to Ohm/s once, feeding the same double delineation/quality/
/// hemodynamics tail as the reference engine.
template <typename B>
class BasicStreamingBeatPipeline {
 public:
  using sample_t = typename B::sample_t;

  BasicStreamingBeatPipeline(dsp::SampleRate fs, const PipelineConfig& cfg = {},
                             double window_s = 12.0,
                             const dsp::Q31ScalingPolicy& scaling = {})
      : fs_(fs), cfg_(cfg),
        window_samples_(static_cast<std::size_t>(std::max(4.0, window_s) * fs)),
        ecg_scale_(B::kFixed ? scaling.ecg_fullscale_mv : 1.0),
        z_scale_(B::kFixed ? scaling.z_fullscale_ohm : 1.0),
        icg_scale_(B::kFixed ? scaling.icg_fullscale(fs) : 1.0),
        ecg_stage_(fs, cfg.ecg_filter),
        icg_stage_(fs, cfg.icg_filter, B::kFixed ? scaling.icg_gain_log2 : 0),
        qrs_(fs, cfg.qrs),
        assembler_(fs, cfg, window_samples_, z_scale_, icg_scale_,
                   scaling.ecg_fullscale_mv, scaling.z_fullscale_ohm,
                   icg_stage_.latency()) {
    ecg_scratch_.reserve(512);
    icg_scratch_.reserve(512);
    r_scratch_.reserve(64);
  }

  /// Feeds one synchronized chunk; returns the beats completed by it.
  std::vector<BeatRecord> push(dsp::SignalView ecg_mv, dsp::SignalView z_ohm) {
    std::vector<BeatRecord> emitted;
    push_into(ecg_mv, z_ohm, emitted);
    return emitted;
  }

  /// Allocation-free form of push(): appends completed beats to `out`
  /// (which is not cleared). With a caller-reused `out`, a warmed-up
  /// session does zero heap allocation per push — the property the fleet
  /// hot path relies on (verified by the allocation-probe test).
  ///
  /// Two-phase per chunk: the sample-rate fronts (ICG conditioner, ECG
  /// cleaner, QRS feature chain) each run as one fused flat pass over
  /// the whole chunk first, then a per-raw-sample replay drives the
  /// scalar tails (gap machine, decision tail, assembler) in exactly the
  /// per-sample ingest order. The fronts depend only on their own raw
  /// inputs — never on tail state (soft_reset touches only the decision
  /// tail's adaptive state) — so splitting the phases is byte-identical
  /// to interleaving them sample by sample.
  void push_into(dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                 std::vector<BeatRecord>& out) {
    if (ecg_mv.size() != z_ohm.size())
      ICGKIT_THROW(std::invalid_argument("StreamingBeatPipeline: chunk length mismatch"));
    const std::size_t n = ecg_mv.size();
    if (n == 0) return;

    // Phase 1: fused fronts over the whole chunk. Under Q31 the raw
    // doubles are quantized exactly once per sample into the input
    // arenas; the double backend feeds the caller's buffers directly.
    std::span<const sample_t> e, z;
    if constexpr (B::kFixed) {
      e_arena_.clear();
      z_arena_.clear();
      for (std::size_t i = 0; i < n; ++i) {
        e_arena_.push_back(ecg_from(ecg_mv[i]));
        z_arena_.push_back(z_from(z_ohm[i]));
      }
      e = e_arena_;
      z = z_arena_;
    } else {
      e = std::span<const sample_t>(ecg_mv.data(), n);
      z = std::span<const sample_t>(z_ohm.data(), n);
    }
    icg_scratch_.clear();
    icg_cum_.clear();
    icg_stage_.process_chunk(z, icg_scratch_, icg_cum_);
    ecg_scratch_.clear();
    ecg_cum_.clear();
    ecg_stage_.process_chunk(e, ecg_scratch_, ecg_cum_);
    feat_out_.clear();
    feat_cum_.clear();
    qrs_.front_chunk(ecg_scratch_, feat_out_, feat_cum_);

    // Phase 2: per-raw-sample replay of the scalar tails, consuming each
    // front's per-input output range [cum[i-1], cum[i]).
    auto& tail = qrs_.decision_tail();
    std::uint32_t icg_lo = 0, ecg_lo = 0;
    for (std::size_t i = 0; i < n; ++i) {
      assembler_.on_raw_sample(ecg_mv[i], z_ohm[i], z[i],
                               [this] { qrs_.soft_reset(); });
      for (std::uint32_t k = icg_lo; k < icg_cum_[i]; ++k) {
        assembler_.on_icg_sample(icg_scratch_[k]);
        if (capture_) captured_icg_.push_back(icg_real(icg_scratch_[k]));
      }
      icg_lo = icg_cum_[i];
      assembler_.maybe_drain_ensemble();

      r_scratch_.clear();
      for (std::uint32_t k = ecg_lo; k < ecg_cum_[i]; ++k) {
        if (capture_) captured_ecg_.push_back(ecg_real(ecg_scratch_[k]));
        tail.note_input(ecg_scratch_[k]);
        const std::uint32_t f_lo = k > 0 ? feat_cum_[k - 1] : 0;
        for (std::uint32_t f = f_lo; f < feat_cum_[k]; ++f)
          tail.on_feature_sample(feat_out_[f], r_scratch_);
      }
      ecg_lo = ecg_cum_[i];
      for (const std::size_t r : r_scratch_) assembler_.on_r_peak(r);
      // Emit every beat whose aligned ICG is now complete -- done per
      // sample so the emission point (and thus the ring-buffer state it
      // reads) is identical however the input was chunked.
      assembler_.drain_ready(out);
    }
  }

  /// Flushes the stage tails and any pending beats (end of recording).
  std::vector<BeatRecord> finish() {
    std::vector<BeatRecord> emitted;
    finish_into(emitted);
    return emitted;
  }

  /// Allocation-free form of finish(): appends to `out`.
  void finish_into(std::vector<BeatRecord>& emitted) {
    icg_scratch_.clear();
    icg_stage_.finish(icg_scratch_);
    for (const sample_t v : icg_scratch_) {
      assembler_.on_icg_sample(v);
      if (capture_) captured_icg_.push_back(icg_real(v));
    }
    assembler_.maybe_drain_ensemble();

    ecg_scratch_.clear();
    ecg_stage_.finish(ecg_scratch_);
    r_scratch_.clear();
    for (const sample_t v : ecg_scratch_) {
      if (capture_) captured_ecg_.push_back(ecg_real(v));
      qrs_.push(v, r_scratch_);
    }
    qrs_.finish(r_scratch_);
    for (const std::size_t r : r_scratch_) assembler_.on_r_peak(r);
    assembler_.drain_ready(emitted);
  }

  [[nodiscard]] std::size_t samples_consumed() const { return assembler_.samples_consumed(); }
  [[nodiscard]] std::size_t r_peak_count() const { return assembler_.r_peak_count(); }
  [[nodiscard]] std::size_t window_samples() const { return assembler_.window_samples(); }
  /// Running mean of the impedance trace consumed so far.
  [[nodiscard]] double z_mean_ohm() const { return assembler_.z_mean_ohm(); }

  /// Records the aligned filtered ECG/ICG streams (used by the batch
  /// wrapper to fill PipelineResult; off by default to keep streaming
  /// memory bounded). Always captured in real units (mV / Ohm per
  /// second), whatever the backend.
  void enable_capture() { capture_ = true; }
  [[nodiscard]] const dsp::Signal& captured_ecg() const { return captured_ecg_; }
  [[nodiscard]] const dsp::Signal& captured_icg() const { return captured_icg_; }

  /// Running per-session quality aggregate: every emitted beat's verdict
  /// plus the contact gaps detected and the recovery resets performed so
  /// far. The fleet surfaces this through its end-of-session FleetBeat.
  [[nodiscard]] const QualitySummary& quality_summary() const {
    return assembler_.quality_summary();
  }
  /// True while a contact gap (flat run past dropout_reset_s) is open on
  /// either channel.
  [[nodiscard]] bool in_dropout() const { return assembler_.in_dropout(); }

  // -- checkpoint/restore (core::Checkpoint subsystem) -----------------
  //
  // The whole carried session state — every stage's filter/detector
  // state, the look-back rings, the pending-beat and gap bookkeeping,
  // the quality aggregate and the optional ensemble template — in the
  // versioned, CRC-framed wire format of core/checkpoint.h. The
  // contract (pinned by tests and the round-trip fuzz CI job): for any
  // cut point and any chunking, checkpoint() then restore() into a
  // freshly constructed pipeline with the same configuration, then
  // resuming the stream, emits byte-identical BeatRecords to the
  // uninterrupted run — for both backends.

  /// Serializes the session into `w` as one section per stage group.
  /// Throws CheckpointError when capture is enabled (the unbounded
  /// capture buffers are a batch-wrapper diagnostic, not session state).
  template <typename W>
  void save_state(W& w) const {
    if (capture_)
      ICGKIT_THROW(CheckpointError("StreamingBeatPipeline: cannot checkpoint with capture enabled"));
    w.begin_section("CFG ");
    w.u8(B::kFixed ? 1 : 0);
    w.f64(fs_);
    w.u64(window_samples_);
    w.boolean(cfg_.enable_ensemble);
    w.end_section();

    w.begin_section("ECGC");
    ecg_stage_.save_state(w);
    w.end_section();

    w.begin_section("ICGC");
    icg_stage_.save_state(w);
    w.end_section();

    w.begin_section("QRSD");
    qrs_.save_state(w);
    w.end_section();

    w.begin_section("RING");
    assembler_.save_ring_body(w);
    w.end_section();

    w.begin_section("BEAT");
    assembler_.save_beat_body(w);
    w.end_section();

    w.begin_section("GAPS");
    assembler_.save_gaps_body(w);
    w.end_section();

    w.begin_section("QSUM");
    assembler_.save_qsum_body(w);
    w.end_section();

    w.begin_section("ENSB");
    assembler_.save_ensb_body(w);
    w.end_section();
  }

  /// Restores the session from `r`. The target must have been
  /// constructed with the same configuration (backend, sample rate,
  /// window, stage layout); any disagreement throws CheckpointError and
  /// leaves the pipeline in an unspecified state — discard it.
  template <typename R>
  void load_state(R& r) {
    r.begin_section("CFG ");
    if (r.u8() != (B::kFixed ? 1 : 0))
      r.fail("StreamingBeatPipeline: numeric-backend mismatch");
    if (r.f64() != fs_) r.fail("StreamingBeatPipeline: sample-rate mismatch");
    if (r.u64() != window_samples_) r.fail("StreamingBeatPipeline: window mismatch");
    if (r.boolean() != cfg_.enable_ensemble)
      r.fail("StreamingBeatPipeline: ensemble-stage mismatch");
    r.end_section();

    r.begin_section("ECGC");
    ecg_stage_.load_state(r);
    r.end_section();

    r.begin_section("ICGC");
    icg_stage_.load_state(r);
    r.end_section();

    r.begin_section("QRSD");
    qrs_.load_state(r);
    r.end_section();

    r.begin_section("RING");
    assembler_.load_ring_body(r);
    r.end_section();

    r.begin_section("BEAT");
    assembler_.load_beat_body(r);
    r.end_section();

    r.begin_section("GAPS");
    assembler_.load_gaps_body(r);
    r.end_section();

    r.begin_section("QSUM");
    assembler_.load_qsum_body(r);
    r.end_section();

    r.begin_section("ENSB");
    assembler_.load_ensb_body(r);
    r.end_section();
  }

  /// Serializes the session into `blob` (replaced; its capacity is
  /// reused, so a warmed-up migration path does not allocate).
  void checkpoint_into(std::vector<std::uint8_t>& blob) const {
    StateWriter w(std::move(blob));
    save_state(w);
    blob = w.take();
  }

  /// The session as a self-contained blob.
  [[nodiscard]] std::vector<std::uint8_t> checkpoint() const {
    std::vector<std::uint8_t> blob;
    checkpoint_into(blob);
    return blob;
  }

  /// Non-throwing pre-check for restore(): true iff `blob` is
  /// structurally intact (magic, version, every section frame and CRC)
  /// and its CFG section matches this pipeline's construction (backend,
  /// sample rate, window, ensemble stage). The C ABI boundary runs this
  /// before restore() so a corrupt or mismatched blob is refused with an
  /// error code even in the no-exceptions firmware profile, where
  /// restore() itself can only panic.
  [[nodiscard]] bool restore_compatible(
      std::span<const std::uint8_t> blob) const noexcept {
    const CheckpointProbe p = probe_checkpoint(blob);
    return p.valid && p.backend_fixed == B::kFixed && p.fs == fs_ &&
           p.window_samples == window_samples_ &&
           p.ensemble == cfg_.enable_ensemble;
  }

  /// Restores a checkpoint() blob into this pipeline (same-configuration
  /// target; see load_state). Throws CheckpointError on any corruption,
  /// truncation, version or configuration mismatch.
  void restore(std::span<const std::uint8_t> blob) {
    StateReader r(blob);
    load_state(r);
    if (!r.at_end())
      ICGKIT_THROW(CheckpointError("StreamingBeatPipeline: trailing bytes after final section"));
  }

 private:
  // Boundary conversions. The double backend's scales are fixed at 1 and
  // the conversions collapse to identity, so the reference engine's
  // arithmetic is untouched by the backend abstraction.
  [[nodiscard]] sample_t ecg_from(double v) const {
    if constexpr (B::kFixed) return B::from_real(v / ecg_scale_);
    else return v;
  }
  [[nodiscard]] sample_t z_from(double v) const {
    if constexpr (B::kFixed) return B::from_real(v / z_scale_);
    else return v;
  }
  [[nodiscard]] double ecg_real(sample_t v) const {
    if constexpr (B::kFixed) return B::to_real(v) * ecg_scale_;
    else return v;
  }
  [[nodiscard]] double icg_real(sample_t v) const {
    if constexpr (B::kFixed) return B::to_real(v) * icg_scale_;
    else return v;
  }

  dsp::SampleRate fs_;
  PipelineConfig cfg_;
  std::size_t window_samples_;
  double ecg_scale_, z_scale_, icg_scale_; ///< per-stage Q31 full scales (1 for double)

  BasicEcgCleanerStage<B> ecg_stage_;
  BasicIcgConditionerStage<B> icg_stage_;
  ecg::BasicOnlinePanTompkins<B> qrs_;
  BeatAssembler<B> assembler_;

  bool capture_ = false;
  dsp::Signal captured_ecg_, captured_icg_;
  std::vector<sample_t> ecg_scratch_, icg_scratch_;
  std::vector<std::size_t> r_scratch_;
  // Two-phase push arenas: quantized input copies (Q31 backend only),
  // the QRS front's feature stream, and the per-input cumulative-output
  // counts of each front. All reused across chunks.
  std::vector<sample_t> e_arena_, z_arena_;
  std::vector<sample_t> feat_out_;
  std::vector<std::uint32_t> icg_cum_, ecg_cum_, feat_cum_;
};

/// The double-precision reference engine.
using StreamingBeatPipeline = BasicStreamingBeatPipeline<dsp::DoubleBackend>;

/// The firmware-arithmetic engine: the full sample-rate chain in Q1.31
/// under dsp::Q31ScalingPolicy, double only past the per-beat boundary.
using FixedStreamingBeatPipeline = BasicStreamingBeatPipeline<dsp::Q31Backend>;

// Both instantiations are compiled once, in pipeline.cpp; every other
// translation unit links against that copy instead of re-instantiating
// the whole engine.
extern template class BeatAssembler<dsp::DoubleBackend>;
extern template class BeatAssembler<dsp::Q31Backend>;
extern template class BasicStreamingBeatPipeline<dsp::DoubleBackend>;
extern template class BasicStreamingBeatPipeline<dsp::Q31Backend>;

class BeatPipeline {
 public:
  explicit BeatPipeline(dsp::SampleRate fs, const PipelineConfig& cfg = {});

  /// Processes one synchronized recording (equal-length ECG mV and
  /// impedance Ohm traces). Thin wrapper: feeds the whole recording as a
  /// single chunk through StreamingBeatPipeline and finish(), so batch
  /// and streaming BeatRecords are byte-identical by construction.
  [[nodiscard]] PipelineResult process(dsp::SignalView ecg_mv,
                                       dsp::SignalView z_ohm) const;

  [[nodiscard]] dsp::SampleRate sample_rate() const { return fs_; }
  [[nodiscard]] const PipelineConfig& config() const { return cfg_; }

 private:
  dsp::SampleRate fs_;
  PipelineConfig cfg_;
};

} // namespace icgkit::core
