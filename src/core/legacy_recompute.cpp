#include "core/legacy_recompute.h"

#include <algorithm>
#include <stdexcept>

namespace icgkit::core {

WindowedRecomputePipeline::WindowedRecomputePipeline(dsp::SampleRate fs,
                                                     const PipelineConfig& cfg,
                                                     double window_s)
    : fs_(fs), pipeline_(fs, cfg),
      window_samples_(static_cast<std::size_t>(std::max(4.0, window_s) * fs)) {}

std::vector<BeatRecord> WindowedRecomputePipeline::push(dsp::SignalView ecg_mv,
                                                        dsp::SignalView z_ohm) {
  if (ecg_mv.size() != z_ohm.size())
    throw std::invalid_argument("WindowedRecomputePipeline: chunk length mismatch");
  ecg_buf_.insert(ecg_buf_.end(), ecg_mv.begin(), ecg_mv.end());
  z_buf_.insert(z_buf_.end(), z_ohm.begin(), z_ohm.end());
  consumed_ += ecg_mv.size();

  // Trim the window from the front, keeping absolute indexing intact.
  if (ecg_buf_.size() > window_samples_) {
    const std::size_t drop = ecg_buf_.size() - window_samples_;
    ecg_buf_.erase(ecg_buf_.begin(), ecg_buf_.begin() + static_cast<dsp::Index>(drop));
    z_buf_.erase(z_buf_.begin(), z_buf_.begin() + static_cast<dsp::Index>(drop));
    buf_start_ += drop;
  }
  return drain(/*final_flush=*/false);
}

std::vector<BeatRecord> WindowedRecomputePipeline::finish() {
  return drain(/*final_flush=*/true);
}

std::vector<BeatRecord> WindowedRecomputePipeline::drain(bool final_flush) {
  std::vector<BeatRecord> emitted;
  if (ecg_buf_.size() < static_cast<std::size_t>(2.0 * fs_)) return emitted;

  PipelineResult res = pipeline_.process(ecg_buf_, z_buf_);
  // A beat is emitted once its *following* R peak is safely inside the
  // window (one-beat latency) -- except on the final flush, where all
  // remaining beats go out.
  const double guard_s = final_flush ? 0.0 : 0.5;
  const double window_end_s =
      static_cast<double>(buf_start_ + ecg_buf_.size()) / fs_ - guard_s;
  for (BeatRecord& rec : res.beats) {
    const double r_abs_s = static_cast<double>(buf_start_ + rec.points.r) / fs_;
    const double next_r_abs_s = r_abs_s + rec.rr_s;
    if (r_abs_s <= last_emitted_r_s_ + 1e-9) continue; // already emitted
    if (next_r_abs_s > window_end_s) continue;         // not complete yet
    // Rebase indices to absolute sample positions. Invalid delineations
    // carry default-zero points; clamp them to the beat's R so a flushed
    // window-edge beat can never reference trimmed samples.
    rec.points.r += buf_start_;
    if (rec.points.valid) {
      rec.points.b += buf_start_;
      rec.points.b0 += buf_start_;
      rec.points.c += buf_start_;
      rec.points.x += buf_start_;
    } else {
      rec.points.b = rec.points.b0 = rec.points.c = rec.points.x = rec.points.r;
    }
    last_emitted_r_s_ = r_abs_s;
    emitted.push_back(rec);
  }
  return emitted;
}

} // namespace icgkit::core
