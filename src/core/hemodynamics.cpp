#include "core/hemodynamics.h"

#include "dsp/stats.h"

#include <cmath>
#include <stdexcept>

#include "support/contract.h"

namespace icgkit::core {

BeatHemodynamics compute_beat_hemodynamics(const BeatDelineation& beat, double rr_s,
                                           double z0_ohm, dsp::SampleRate fs,
                                           const BodyParameters& body) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("compute_beat_hemodynamics: fs"));
  BeatHemodynamics h;
  if (!beat.valid || rr_s <= 0.0 || z0_ohm <= 0.0) return h;

  h.pep_s = static_cast<double>(beat.b - beat.r) / fs;
  h.lvet_s = static_cast<double>(beat.x - beat.b) / fs;
  h.hr_bpm = 60.0 / rr_s;
  h.dzdt_max = beat.c_amplitude;

  // Thoracic-equivalent quantities (identity for the traditional setup).
  const double z0_th = z0_ohm * body.z0_to_thoracic;
  const double dzdt_th = h.dzdt_max * body.dzdt_to_thoracic;

  const double l_over_z0 = body.electrode_distance_cm / z0_th;
  h.sv_kubicek_ml =
      body.blood_resistivity_ohm_cm * l_over_z0 * l_over_z0 * h.lvet_s * dzdt_th;

  const double vept = std::pow(0.17 * body.height_cm, 3.0) / 4.25; // volume of electrically
  h.sv_sramek_ml = vept * (dzdt_th / z0_th) * h.lvet_s;            // participating tissue

  h.co_kubicek_l_min = h.sv_kubicek_ml * h.hr_bpm / 1000.0;
  h.tfc_per_kohm = 1000.0 / z0_th;
  return h;
}

HemodynamicsSummary summarize_hemodynamics(const std::vector<BeatHemodynamics>& beats,
                                           double mad_factor) {
  HemodynamicsSummary s;
  if (beats.empty()) return s;

  dsp::Signal peps, lvets;
  for (const auto& b : beats) {
    peps.push_back(b.pep_s);
    lvets.push_back(b.lvet_s);
  }
  const double pep_med = dsp::median(peps);
  const double pep_mad = dsp::mad(peps);
  const double lvet_med = dsp::median(lvets);
  const double lvet_mad = dsp::mad(lvets);

  auto inlier = [&](const BeatHemodynamics& b) {
    // A zero MAD (identical beats) accepts everything at the median.
    const double pep_tol = std::max(mad_factor * pep_mad, 1e-9);
    const double lvet_tol = std::max(mad_factor * lvet_mad, 1e-9);
    return std::abs(b.pep_s - pep_med) <= pep_tol &&
           std::abs(b.lvet_s - lvet_med) <= lvet_tol;
  };

  dsp::Signal pep2, lvet2, hr2, svk, svs, co, tfc;
  for (const auto& b : beats) {
    if (!inlier(b)) {
      ++s.beats_rejected;
      continue;
    }
    pep2.push_back(b.pep_s);
    lvet2.push_back(b.lvet_s);
    hr2.push_back(b.hr_bpm);
    svk.push_back(b.sv_kubicek_ml);
    svs.push_back(b.sv_sramek_ml);
    co.push_back(b.co_kubicek_l_min);
    tfc.push_back(b.tfc_per_kohm);
  }
  s.beats_used = pep2.size();
  if (s.beats_used == 0) return s;
  s.pep_s = dsp::mean(pep2);
  s.lvet_s = dsp::mean(lvet2);
  s.hr_bpm = dsp::mean(hr2);
  s.sv_kubicek_ml = dsp::mean(svk);
  s.sv_sramek_ml = dsp::mean(svs);
  s.co_kubicek_l_min = dsp::mean(co);
  s.tfc_per_kohm = dsp::mean(tfc);
  return s;
}

} // namespace icgkit::core
