#include "core/delineator.h"

#include "dsp/derivative.h"
#include "dsp/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "support/contract.h"

namespace icgkit::core {

namespace {

std::size_t to_samples(double seconds, dsp::SampleRate fs) {
  return static_cast<std::size_t>(std::max(0.0, seconds) * fs);
}

// First local minimum of `d` scanning left from `start` down to `floor`
// (exclusive of the endpoints where the test needs both neighbours).
std::optional<std::size_t> first_local_min_left(dsp::SignalView d, std::size_t start,
                                                std::size_t floor) {
  if (start == 0) return std::nullopt;
  for (std::size_t i = std::min(start, d.size() - 2); i > floor && i >= 1; --i) {
    if (d[i] < d[i - 1] && d[i] <= d[i + 1]) return i;
  }
  return std::nullopt;
}

// First index, scanning left from `start` down to `floor`, where the
// first derivative crosses zero (the ICG local minimum / flat point).
std::optional<std::size_t> first_zero_crossing_left(dsp::SignalView d1, std::size_t start,
                                                    std::size_t floor) {
  for (std::size_t i = std::min(start, d1.size() - 1); i > floor && i >= 1; --i) {
    if ((d1[i] >= 0.0 && d1[i - 1] < 0.0) || (d1[i] <= 0.0 && d1[i - 1] > 0.0)) return i;
  }
  return std::nullopt;
}

} // namespace

void DelineationScratch::reserve(std::size_t beat_samples) {
  work.reserve(beat_samples);
  anchor.reserve(beat_samples);
  ts.reserve(beat_samples);
  vs.reserve(beat_samples);
  seg.reserve(beat_samples);
  d1.reserve(beat_samples);
  d2.reserve(beat_samples);
  d3.reserve(beat_samples);
  d3_tmp.reserve(beat_samples);
  sign_runs.reserve(beat_samples);
}

IcgDelineator::IcgDelineator(dsp::SampleRate fs, const DelineationConfig& cfg)
    : fs_(fs), cfg_(cfg) {
  if (fs <= 0.0) ICGKIT_THROW(std::invalid_argument("IcgDelineator: fs must be positive"));
  if (!(cfg.b_line_low_frac < cfg.b_line_high_frac) || cfg.b_line_high_frac >= 1.0)
    ICGKIT_THROW(std::invalid_argument("IcgDelineator: bad line-fit fractions"));
}

BeatDelineation IcgDelineator::delineate(dsp::SignalView icg, std::size_t r_idx,
                                         std::size_t next_r_idx,
                                         std::optional<double> rt_s) const {
  DelineationScratch scratch;
  return delineate(icg, r_idx, next_r_idx, scratch, rt_s);
}

BeatDelineation IcgDelineator::delineate(dsp::SignalView icg, std::size_t r_idx,
                                         std::size_t next_r_idx, DelineationScratch& scratch,
                                         std::optional<double> rt_s) const {
  BeatDelineation out;
  out.r = r_idx;
  if (next_r_idx <= r_idx + 10 || next_r_idx > icg.size()) return out;

  // ---- per-beat detrend (see DelineationConfig::detrend) --------------
  // Anchors: median of the samples just after R and just before next R
  // (both diastolic); the line through them is the local baseline.
  dsp::Signal& work = scratch.work;
  work.assign(icg.begin() + static_cast<dsp::Index>(r_idx),
              icg.begin() + static_cast<dsp::Index>(next_r_idx));
  if (cfg_.detrend && work.size() > 20) {
    const std::size_t anchor = std::max<std::size_t>(2, to_samples(0.03, fs_));
    scratch.anchor.assign(work.begin(), work.begin() + static_cast<dsp::Index>(anchor));
    const double y0 = dsp::median_inplace(scratch.anchor);
    scratch.anchor.assign(work.end() - static_cast<dsp::Index>(anchor), work.end());
    const double y1 = dsp::median_inplace(scratch.anchor);
    const double slope = (y1 - y0) / static_cast<double>(work.size() - anchor);
    for (std::size_t i = 0; i < work.size(); ++i)
      work[i] -= y0 + slope * static_cast<double>(i);
  }
  // From here on, all amplitude logic uses the detrended beat; `at(i)`
  // reads it by absolute index.
  auto at = [&](std::size_t abs_idx) { return work[abs_idx - r_idx]; };

  // ---- C point: maximum inside the physiological search window --------
  const std::size_t c_lo = std::min(next_r_idx - 1, r_idx + to_samples(cfg_.c_search_min_s, fs_));
  const std::size_t c_hi = std::min(next_r_idx - 1, r_idx + to_samples(cfg_.c_search_max_s, fs_));
  if (c_lo >= c_hi) return out;
  std::size_t c = c_lo;
  for (std::size_t i = c_lo; i <= c_hi; ++i)
    if (at(i) > at(c)) c = i;
  if (at(c) <= 0.0) return out; // no ejection wave in this beat
  out.c = c;
  out.c_amplitude = at(c);

  // ---- B0: line fit of the rising limb between 40 % and 80 % of C -----
  const double lo_level = cfg_.b_line_low_frac * at(c);
  const double hi_level = cfg_.b_line_high_frac * at(c);
  // The floor combines the look-back bound with the physiological PEP
  // minimum: without the latter, an artifact-flattened notch lets the
  // zero-crossing scan run all the way to R (PEP = 0).
  const std::size_t b_floor =
      std::max(r_idx + to_samples(cfg_.b_min_pep_s, fs_),
               c > to_samples(cfg_.b_search_back_s, fs_)
                   ? c - to_samples(cfg_.b_search_back_s, fs_)
                   : std::size_t{0});
  if (b_floor >= c) return out;
  // Walk left from C to find where the rising limb passes the two levels.
  std::size_t i_hi = c, i_lo = c;
  for (std::size_t i = c; i > b_floor; --i) {
    if (at(i) >= hi_level) i_hi = i;
    if (at(i) >= lo_level) i_lo = i;
    else break; // fell below the 40 % level: the limb segment is complete
  }
  if (i_lo >= i_hi || i_hi - i_lo < 2) return out; // limb too steep to fit at this fs
  dsp::Signal& ts = scratch.ts;
  dsp::Signal& vs = scratch.vs;
  ts.clear();
  vs.clear();
  for (std::size_t i = i_lo; i <= i_hi; ++i) {
    ts.push_back(static_cast<double>(i));
    vs.push_back(at(i));
  }
  const dsp::LineFit fit = dsp::fit_line(ts, vs);
  const std::optional<double> crossing = fit.zero_crossing();
  if (!crossing.has_value()) return out;
  const double b0_f = std::clamp(*crossing, static_cast<double>(b_floor),
                                 static_cast<double>(c));
  const std::size_t b0 = static_cast<std::size_t>(b0_f);
  out.b0 = b0;

  // ---- derivatives over the beat neighbourhood -------------------------
  // Slice a window [b_floor-5, x_hi+5] (clamped to the beat) so derivative
  // edge effects stay outside the decision region.
  const std::size_t x_hi_limit =
      std::min(next_r_idx - 1, c + to_samples(cfg_.x_search_max_s, fs_));
  const std::size_t w_lo = std::max(r_idx, b_floor > 5 ? b_floor - 5 : 0);
  const std::size_t w_hi = std::min(next_r_idx - 1, x_hi_limit + 5);
  dsp::Signal& seg = scratch.seg;
  seg.assign(work.begin() + static_cast<dsp::Index>(w_lo - r_idx),
             work.begin() + static_cast<dsp::Index>(w_hi + 1 - r_idx));
  dsp::derivative_into(seg, fs_, scratch.d1);
  dsp::second_derivative_into(seg, fs_, scratch.d2);
  dsp::third_derivative_into(seg, fs_, scratch.d3_tmp, scratch.d3);
  const dsp::Signal& d1 = scratch.d1;
  const dsp::Signal& d2 = scratch.d2;
  const dsp::Signal& d3 = scratch.d3;
  auto local = [&](std::size_t abs_idx) { return abs_idx - w_lo; };
  auto absolute = [&](std::size_t loc_idx) { return loc_idx + w_lo; };

  // ---- B point ---------------------------------------------------------
  // Look for the (+,-,+,-) sign pattern of d2 on the *rising limb*,
  // scanning left from C down to B0. The pattern signals an inflection-
  // type B (a curvature wiggle on the upstroke with no local minimum);
  // scanning further left would always pick up the A wave's curvature
  // and falsely trigger the rule on every beat.
  double d2_max = 0.0;
  for (std::size_t i = local(b_floor); i <= local(c); ++i)
    d2_max = std::max(d2_max, std::abs(d2[i]));
  const double tol = cfg_.d2_tolerance_frac * d2_max;
  std::vector<int>& sign_runs = scratch.sign_runs;
  sign_runs.clear();
  for (std::size_t i = local(c);; --i) {
    const int s = dsp::sign_with_tolerance(d2[i], tol);
    if (s != 0 && (sign_runs.empty() || sign_runs.back() != s)) sign_runs.push_back(s);
    if (i == local(b0) || i == 0) break;
  }
  // Reading right-to-left from C, the pattern (+,-,+,-) appears as the
  // sequence encountered while scanning left: (-,+,-,+) in scan order --
  // equivalently the left-to-right runs end with +,-,+,- at C. Compare
  // both phases conservatively: require at least 4 runs with the last
  // four alternating starting on -1 in scan order.
  bool has_pattern = false;
  if (sign_runs.size() >= 4) {
    has_pattern = sign_runs[0] == -1 && sign_runs[1] == 1 && sign_runs[2] == -1 &&
                  sign_runs[3] == 1;
  }

  std::optional<std::size_t> b_local;
  if (has_pattern) {
    out.b_method = BPointMethod::SignPattern;
    b_local = first_local_min_left(d3, local(b0), local(b_floor) > 0 ? local(b_floor) : 0);
  }
  if (!b_local.has_value()) {
    if (!has_pattern) out.b_method = BPointMethod::ZeroCrossing;
    b_local = first_zero_crossing_left(d1, local(b0), local(b_floor) > 0 ? local(b_floor) : 0);
  }
  if (!b_local.has_value()) {
    // Degenerate rise with no minimum: take B0 itself.
    b_local = local(b0);
  }
  out.b = absolute(*b_local);
  if (out.b >= out.c) out.b = b0 < c ? b0 : c - 1;

  // ---- X point ---------------------------------------------------------
  std::size_t x_lo = c + 1;
  std::size_t x_hi = x_hi_limit;
  if (cfg_.x_rule == XPointRule::CarvalhoRtWindow && rt_s.has_value() && *rt_s > 0.0) {
    const std::size_t rt = to_samples(*rt_s, fs_);
    x_lo = std::max(x_lo, r_idx + rt);
    x_hi = std::min(x_hi, r_idx + to_samples(1.75 * *rt_s, fs_));
  }
  if (x_lo >= x_hi || x_hi >= icg.size()) return out;
  std::size_t x0 = x_lo;
  for (std::size_t i = x_lo; i <= x_hi; ++i)
    if (at(i) < at(x0)) x0 = i;
  // X0 must be a negative trough; otherwise the beat has no usable X.
  if (at(x0) >= 0.0) return out;

  // Refinement: local minimum of the 3rd derivative left of X0, bounded
  // to a physiological window (valve closure precedes the trough bottom
  // by at most a few tens of ms; an unbounded search would wander onto
  // the decay limb on smooth signals).
  const std::size_t x_floor =
      std::max(local(c), local(x0) > to_samples(cfg_.x_refine_max_s, fs_)
                             ? local(x0) - to_samples(cfg_.x_refine_max_s, fs_)
                             : local(c));
  const std::optional<std::size_t> x_local = first_local_min_left(d3, local(x0), x_floor);
  out.x = x_local.has_value() ? absolute(*x_local) : x0;
  if (out.x <= out.c) out.x = x0;

  out.valid = out.b < out.c && out.c < out.x;
  return out;
}

} // namespace icgkit::core
