// The seed's windowed-recompute streaming adapter, retained as the
// "old" reference for bench_cpu_duty_cycle's old-vs-new comparison.
//
// Every push() appends the chunk to a bounded sliding window (default
// 12 s) and re-runs the entire batch pipeline -- filters, QRS detection,
// delineation -- over that window, i.e. O(window) work per chunk
// regardless of chunk size. StreamingBeatPipeline replaces this with
// stateful O(chunk) stages; this class exists so the speedup stays
// measurable (and regression-tested) against the architecture it
// replaced. Do not use it in new code.
#pragma once

#include "core/pipeline.h"
#include "dsp/types.h"

#include <vector>

namespace icgkit::core {

/// The seed's O(window)-per-push streaming adapter (see header comment);
/// kept only as the bench baseline. Do not use in new code.
class WindowedRecomputePipeline {
 public:
  WindowedRecomputePipeline(dsp::SampleRate fs, const PipelineConfig& cfg = {},
                            double window_s = 12.0);

  /// Feeds one synchronized chunk; returns the beats completed by it.
  std::vector<BeatRecord> push(dsp::SignalView ecg_mv, dsp::SignalView z_ohm);

  /// Flushes the final pending beat (end of recording).
  std::vector<BeatRecord> finish();

  [[nodiscard]] std::size_t samples_consumed() const { return consumed_; }

 private:
  std::vector<BeatRecord> drain(bool final_flush);

  dsp::SampleRate fs_;
  BeatPipeline pipeline_;
  std::size_t window_samples_;
  dsp::Signal ecg_buf_;
  dsp::Signal z_buf_;
  std::size_t buf_start_ = 0;   ///< absolute index of buffer sample 0
  std::size_t consumed_ = 0;    ///< absolute samples fed so far
  double last_emitted_r_s_ = -1.0; ///< absolute time of last emitted beat's R
};

} // namespace icgkit::core
