// Hemodynamic parameter estimation from delineated ICG beats
// (Section IV-B of the paper).
//
// Systolic time intervals:
//   PEP  = R-to-B interval (electro-mechanical delay)
//   LVET = B-to-X interval (left-ventricular ejection time)
//
// Stroke volume estimators the paper cites:
//   Kubicek (1966):            SV = rho * (L/Z0)^2 * LVET * (dZ/dt)max
//   Sramek-Bernstein (1992):   SV = ((0.17 H)^3 / 4.25) * (dZ/dt)max/Z0 * LVET
// with rho the blood resistivity (Ohm cm), L the inter-electrode distance
// (cm), H the subject height (cm), Z0 the base thoracic impedance (Ohm).
// Both yield SV in cm^3 (ml). Cardiac output CO = SV * HR / 1000 (l/min);
// thoracic fluid content TFC = 1000 / Z0 (1/kOhm) is the fluid-status
// surrogate used in CHF monitoring.
#pragma once

#include "core/delineator.h"
#include "dsp/types.h"

#include <optional>
#include <vector>

namespace icgkit::core {

/// Body/electrode constants for the SV estimators.
struct BodyParameters {
  double blood_resistivity_ohm_cm = 135.0;
  double electrode_distance_cm = 30.0;
  double height_cm = 178.0;

  /// Path-to-thoracic calibration. The Kubicek and Sramek-Bernstein
  /// estimators are defined for *thoracic* measurements; a touch device
  /// measures a hand-to-hand path whose Z0 is an order of magnitude
  /// higher and whose cardiac dZ/dt is attenuated by the body transfer.
  /// A real device determines these two factors once per posture against
  /// a reference system (the paper's future work mentions exactly this
  /// comparison); with the synthetic substrate they come from the channel
  /// model (synth::touch_calibration). Defaults of 1 = thoracic setup.
  double z0_to_thoracic = 1.0;
  double dzdt_to_thoracic = 1.0;
};

/// Per-beat hemodynamic estimates.
struct BeatHemodynamics {
  double pep_s = 0.0;
  double lvet_s = 0.0;
  double hr_bpm = 0.0;        ///< from this beat's RR interval
  double dzdt_max = 0.0;      ///< Ohm/s
  double sv_kubicek_ml = 0.0;
  double sv_sramek_ml = 0.0;
  double co_kubicek_l_min = 0.0;
  double tfc_per_kohm = 0.0;
};

/// Computes per-beat parameters. `rr_s` is this beat's R-to-R interval,
/// `z0_ohm` the base impedance during the beat.
BeatHemodynamics compute_beat_hemodynamics(const BeatDelineation& beat, double rr_s,
                                           double z0_ohm, dsp::SampleRate fs,
                                           const BodyParameters& body = {});

/// Aggregate over a recording with robust outlier rejection: beats whose
/// PEP or LVET deviates from the median by more than `mad_factor` scaled
/// MADs are dropped.
struct HemodynamicsSummary {
  double pep_s = 0.0;
  double lvet_s = 0.0;
  double hr_bpm = 0.0;
  double sv_kubicek_ml = 0.0;
  double sv_sramek_ml = 0.0;
  double co_kubicek_l_min = 0.0;
  double tfc_per_kohm = 0.0;
  std::size_t beats_used = 0;
  std::size_t beats_rejected = 0;
};

HemodynamicsSummary summarize_hemodynamics(const std::vector<BeatHemodynamics>& beats,
                                           double mad_factor = 3.0);

} // namespace icgkit::core
