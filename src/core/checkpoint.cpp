#include "core/checkpoint.h"

#include <array>

namespace icgkit::core {

namespace {

// Standard CRC-32 (IEEE 802.3, reflected 0xEDB88320) lookup table,
// computed once on first use.
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

} // namespace

std::uint32_t checkpoint_crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

namespace {

std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

} // namespace

CheckpointProbe probe_checkpoint(std::span<const std::uint8_t> blob) noexcept {
  CheckpointProbe probe;
  std::size_t pos = 0;

  // Header: magic + version, exactly as StateReader's constructor.
  if (blob.size() < 8) return probe;
  if (le32(blob.data()) != kCheckpointMagic) return probe;
  if (le32(blob.data() + 4) != kCheckpointVersion) return probe;
  pos = 8;

  // Section walk: every frame must carry a plausible tag, an in-bounds
  // length, and a matching payload CRC — the same structural rules
  // StateReader::begin_section enforces, minus the raising.
  bool first = true;
  while (pos < blob.size()) {
    if (blob.size() - pos < 8) return probe;  // tag + length
    const std::uint8_t* tag = blob.data() + pos;
    const std::uint32_t len = le32(blob.data() + pos + 4);
    pos += 8;
    const std::size_t remaining = blob.size() - pos;
    if (remaining < 4 || len > remaining - 4) return probe;  // payload + CRC
    const std::uint8_t* payload = blob.data() + pos;
    if (le32(payload + len) != checkpoint_crc32(payload, len)) return probe;

    if (first) {
      // The pipeline's leading "CFG " section: backend flag (u8), sample
      // rate (f64), window length (u64), ensemble flag (bool byte).
      if (std::memcmp(tag, "CFG ", 4) != 0) return probe;
      if (len != 1 + 8 + 8 + 1) return probe;
      if (payload[0] > 1 || payload[17] > 1) return probe;
      probe.backend_fixed = payload[0] == 1;
      probe.fs = std::bit_cast<double>(le64(payload + 1));
      probe.window_samples = le64(payload + 9);
      probe.ensemble = payload[17] == 1;
      first = false;
    }
    pos += len + 4;
  }
  probe.valid = !first;  // at least the CFG section, nothing malformed
  return probe;
}

} // namespace icgkit::core
