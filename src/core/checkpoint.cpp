#include "core/checkpoint.h"

#include <array>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ICGKIT_CRC_CLMUL 1
#include <immintrin.h>
#endif

namespace icgkit::core {

namespace {

// Standard CRC-32 (IEEE 802.3, reflected 0xEDB88320), computed
// slice-by-8: eight derived tables let the hot loop fold 8 input bytes
// per iteration instead of 1. Produces bit-identical CRCs to the
// classic single-table walk (the golden checkpoint fixtures pin them);
// only the throughput changes, which matters because every flight
// recorder section is CRC'd on both the record and replay paths.
// constexpr so the 8 KiB of tables live in .rodata (flash on the
// firmware profile) rather than eating the static-RAM budget as a
// runtime-initialised function-local static would.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (std::size_t s = 1; s < 8; ++s)
      t[s][i] = t[0][t[s - 1][i] & 0xFFu] ^ (t[s - 1][i] >> 8);
  return t;
}

#if defined(ICGKIT_CRC_CLMUL)
// Carry-less-multiply CRC-32 (reflected IEEE 0xEDB88320) after the
// Intel folding method ("Fast CRC Computation for Generic Polynomials
// Using PCLMULQDQ", Gopal et al.): fold 64-byte blocks in four 128-bit
// lanes, collapse to one lane, then Barrett-reduce to 32 bits. The
// k-constants are x^(bits) mod P precomputed for the reflected IEEE
// polynomial — the same public values every PCLMUL CRC-32 uses.
// Requires len >= 64 and len % 16 == 0; `crc` is the running
// accumulator (pre-inversion domain), and the return value is too, so
// it chains with the table path for the tail bytes. Table-CRC parity
// is pinned by the golden checkpoint fixtures and a randomized
// cross-check in checkpoint_test.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t crc32_clmul(
    const std::uint8_t* data, std::size_t n, std::uint32_t crc) {
  alignas(16) static const std::uint64_t k1k2[2] = {0x0154442bd4, 0x01c6e41596};
  alignas(16) static const std::uint64_t k3k4[2] = {0x01751997d0, 0x00ccaa009e};
  alignas(16) static const std::uint64_t k5[2] = {0x0163cd6124, 0};
  alignas(16) static const std::uint64_t poly[2] = {0x01db710641, 0x01f7011641};

  const auto* p = reinterpret_cast<const __m128i*>(data);
  __m128i x1 = _mm_loadu_si128(p + 0);
  __m128i x2 = _mm_loadu_si128(p + 1);
  __m128i x3 = _mm_loadu_si128(p + 2);
  __m128i x4 = _mm_loadu_si128(p + 3);
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  __m128i k = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));
  p += 4;
  n -= 64;

  while (n >= 64) {
    const __m128i h1 = _mm_clmulepi64_si128(x1, k, 0x00);
    const __m128i h2 = _mm_clmulepi64_si128(x2, k, 0x00);
    const __m128i h3 = _mm_clmulepi64_si128(x3, k, 0x00);
    const __m128i h4 = _mm_clmulepi64_si128(x4, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, h1), _mm_loadu_si128(p + 0));
    x2 = _mm_xor_si128(_mm_xor_si128(x2, h2), _mm_loadu_si128(p + 1));
    x3 = _mm_xor_si128(_mm_xor_si128(x3, h3), _mm_loadu_si128(p + 2));
    x4 = _mm_xor_si128(_mm_xor_si128(x4, h4), _mm_loadu_si128(p + 3));
    p += 4;
    n -= 64;
  }

  k = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));
  for (const __m128i* lane : {&x2, &x3, &x4}) {
    const __m128i h = _mm_clmulepi64_si128(x1, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, h), *lane);
  }
  while (n >= 16) {
    const __m128i h = _mm_clmulepi64_si128(x1, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, h), _mm_loadu_si128(p));
    ++p;
    n -= 16;
  }

  // 128 -> 64 bits, then Barrett reduction to the final 32-bit value.
  const __m128i mask32 = _mm_setr_epi32(-1, 0, -1, 0);
  __m128i h = _mm_clmulepi64_si128(x1, k, 0x10);
  x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), h);
  k = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5));
  h = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_xor_si128(_mm_clmulepi64_si128(x1, k, 0x00), h);
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(poly));
  h = _mm_and_si128(x1, mask32);
  h = _mm_clmulepi64_si128(h, k, 0x10);
  h = _mm_and_si128(h, mask32);
  h = _mm_clmulepi64_si128(h, k, 0x00);
  x1 = _mm_xor_si128(x1, h);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

bool cpu_has_clmul() {
  static const bool ok =
      __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
  return ok;
}
#endif  // ICGKIT_CRC_CLMUL

} // namespace

std::uint32_t checkpoint_crc32(const std::uint8_t* data, std::size_t n) {
  static constexpr auto t = make_crc_tables();
  std::uint32_t crc = 0xFFFFFFFFu;
#if defined(ICGKIT_CRC_CLMUL)
  // The folded kernel needs a 16-byte-multiple length of at least 64;
  // the slice-by-8 path below finishes the tail.
  if (const std::size_t folded = n & ~std::size_t{15};
      folded >= 64 && cpu_has_clmul()) {
    crc = crc32_clmul(data, folded, crc);
    data += folded;
    n -= folded;
  }
#endif
  while (n >= 8) {
    crc ^= static_cast<std::uint32_t>(data[0]) |
           (static_cast<std::uint32_t>(data[1]) << 8) |
           (static_cast<std::uint32_t>(data[2]) << 16) |
           (static_cast<std::uint32_t>(data[3]) << 24);
    crc = t[7][crc & 0xFFu] ^ t[6][(crc >> 8) & 0xFFu] ^
          t[5][(crc >> 16) & 0xFFu] ^ t[4][crc >> 24] ^ t[3][data[4]] ^
          t[2][data[5]] ^ t[1][data[6]] ^ t[0][data[7]];
    data += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i)
    crc = t[0][(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

namespace {

std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

} // namespace

CheckpointProbe probe_checkpoint(std::span<const std::uint8_t> blob) noexcept {
  CheckpointProbe probe;
  std::size_t pos = 0;

  // Header: magic + version, exactly as StateReader's constructor.
  if (blob.size() < 8) return probe;
  if (le32(blob.data()) != kCheckpointMagic) return probe;
  if (le32(blob.data() + 4) != kCheckpointVersion) return probe;
  pos = 8;

  // Section walk: every frame must carry a plausible tag, an in-bounds
  // length, and a matching payload CRC — the same structural rules
  // StateReader::begin_section enforces, minus the raising.
  bool first = true;
  while (pos < blob.size()) {
    if (blob.size() - pos < 8) return probe;  // tag + length
    const std::uint8_t* tag = blob.data() + pos;
    const std::uint32_t len = le32(blob.data() + pos + 4);
    pos += 8;
    const std::size_t remaining = blob.size() - pos;
    if (remaining < 4 || len > remaining - 4) return probe;  // payload + CRC
    const std::uint8_t* payload = blob.data() + pos;
    if (le32(payload + len) != checkpoint_crc32(payload, len)) return probe;

    if (first) {
      // The pipeline's leading "CFG " section: backend flag (u8), sample
      // rate (f64), window length (u64), ensemble flag (bool byte).
      if (std::memcmp(tag, "CFG ", 4) != 0) return probe;
      if (len != 1 + 8 + 8 + 1) return probe;
      if (payload[0] > 1 || payload[17] > 1) return probe;
      probe.backend_fixed = payload[0] == 1;
      probe.fs = std::bit_cast<double>(le64(payload + 1));
      probe.window_samples = le64(payload + 9);
      probe.ensemble = payload[17] == 1;
      first = false;
    }
    pos += len + 4;
  }
  probe.valid = !first;  // at least the CFG section, nothing malformed
  return probe;
}

} // namespace icgkit::core
