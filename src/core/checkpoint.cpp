#include "core/checkpoint.h"

#include <array>

namespace icgkit::core {

namespace {

// Standard CRC-32 (IEEE 802.3, reflected 0xEDB88320) lookup table,
// computed once on first use.
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

} // namespace

std::uint32_t checkpoint_crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

} // namespace icgkit::core
