#include "core/alloc_probe.h"

namespace icgkit::core {

std::atomic<std::uint64_t>& allocation_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

} // namespace icgkit::core
