// Deterministic per-session flight recorder + time-travel replay.
//
// A flight record (`.icgr` file) composes the two properties the engine
// already guarantees — bit-determinism (PR 1) and CRC-framed
// checkpointability (PR 5) — into an ops-grade capture: the raw input
// chunks of one session interleaved with periodic full-pipeline
// checkpoints, in one stream that reuses the Checkpoint wire format
// (magic/version header, `[tag][len u32][payload][CRC-32]` sections,
// little-endian, doubles as IEEE-754 u64 bit patterns). Any recorded
// session can be reconstructed offline, byte-for-byte:
//
//   [magic "ICGK"] [version u32]
//   RHDR   flight sub-version, backend, fs, window, ensemble flag,
//          checkpoint cadence, start position, seed provenance
//   CKPT   initial full-pipeline checkpoint (always present, so a
//          recording started mid-session is self-contained)
//   CHNK*  one section per push: raw ECG/Z samples + the beats that
//          push emitted (canonical serialize_beat bytes)
//   CKPT*  periodic checkpoints every `checkpoint_interval` samples —
//          the seek index for time-travel replay
//   FINI   terminal summary: finish() tail beats, QualitySummary,
//          totals (absent when the recording was cut mid-stream; the
//          file stays replayable up to its last intact section)
//
// The recorder taps a live pipeline *observationally*: it serializes
// what the engine consumed and emitted but never feeds it, so recording
// cannot perturb byte-identity (pinned by test). Steady-state recording
// is allocation-free once scratch buffers are warmed: sections are
// framed into a reused buffer (StateWriter::continuation) and periodic
// checkpoints reuse the pipeline's checkpoint_into() blob.
//
// Replay reconstructs the engine from the RHDR + initial CKPT and
// re-runs the recorded chunks through a freshly built pipeline,
// comparing emitted beat bytes chunk by chunk and checkpoint states
// section by section — so a divergence (new ISA, new build, backend
// bug) is localized to the exact chunk where it first appears. Replay
// assumes the recording was made with the default PipelineConfig (as
// the fleet, the C ABI, and the tools all do) apart from the ensemble
// flag, which travels in RHDR; a recording made with a bespoke kernel
// configuration restores into a mismatched engine and is *refused* with
// CheckpointError by the nested checkpoint's own structural validation,
// never silently misreplayed.
#pragma once

#include "core/beat_serializer.h"
#include "core/checkpoint.h"
#include "core/pipeline.h"
#include "core/quality.h"
#include "dsp/types.h"

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace icgkit::core {

/// Sub-version of the flight-record layout (inside the shared checkpoint
/// container version). Bump on any incompatible RHDR/CHNK/FINI change.
inline constexpr std::uint32_t kFlightVersion = 1;

/// Default periodic-checkpoint cadence, in consumed samples. 200 s of
/// signal at the paper's 250 Hz: a full checkpoint costs ~0.4 ms, so the
/// cadence is chosen to keep steady-state recording overhead well under
/// the 5% ceiling BENCH_replay.json gates, while bounding the suffix a
/// seek must re-run.
inline constexpr std::uint64_t kFlightCheckpointInterval = 50'000;

/// Recording parameters + seed provenance carried in the RHDR section.
/// The provenance fields are opaque to replay (they document how the
/// input stream was synthesized, for humans and the fuzz corpus); only
/// `checkpoint_interval` and `window_s` affect the recorder itself.
struct FlightRecorderConfig {
  /// Samples between periodic CKPT sections; 0 disables periodic
  /// checkpoints (the initial one is always written).
  std::uint64_t checkpoint_interval = kFlightCheckpointInterval;
  /// Must match the recorded pipeline's construction window (validated
  /// against the initial checkpoint's CFG section at record start).
  double window_s = 12.0;
  std::uint64_t seed = 0;    ///< provenance: synthesis / scenario seed
  std::int32_t tier = -1;    ///< provenance: scenario tier (-1 = n/a)
  std::uint64_t subject = 0; ///< provenance: roster subject index
  std::string note;          ///< provenance: free-form origin tag
};

/// Parsed RHDR section of a flight record.
struct FlightHeader {
  std::uint32_t flight_version = 0;
  bool backend_fixed = false;        ///< recorded by the Q31 backend
  double fs = 0.0;
  double window_s = 0.0;
  std::uint64_t window_samples = 0;
  bool ensemble = false;
  std::uint64_t checkpoint_interval = 0;
  std::uint64_t start_samples = 0;   ///< engine position at record start
  std::uint64_t seed = 0;
  std::int32_t tier = -1;
  std::uint64_t subject = 0;
  std::string note;
};

/// Byte-stream target a FlightRecorder writes through. Implementations
/// must tolerate arbitrary write sizes (one call per framed section).
class RecorderSink {
 public:
  virtual ~RecorderSink() = default;
  virtual void write(const std::uint8_t* data, std::size_t n) = 0;
  /// Called once when the recording is finalized (FINI written) so file
  /// sinks can push bytes to durable storage before the pilot reads the
  /// file back. Default: no-op.
  virtual void flush() {}
};

/// RecorderSink over a binary file. Construction truncates; any write
/// failure throws CheckpointError (recording is an integrity feature —
/// a silently short file would defeat it).
class FileRecorderSink final : public RecorderSink {
 public:
  explicit FileRecorderSink(const std::string& path);
  ~FileRecorderSink() override;
  FileRecorderSink(const FileRecorderSink&) = delete;
  FileRecorderSink& operator=(const FileRecorderSink&) = delete;
  void write(const std::uint8_t* data, std::size_t n) override;
  void flush() override;

 private:
  struct Impl;
  Impl* impl_;
};

/// RecorderSink into memory — the in-process form tests, the fuzzer and
/// bench_replay record through.
class BufferRecorderSink final : public RecorderSink {
 public:
  /// `reserve_bytes` pre-sizes the buffer so steady-state recording
  /// appends without reallocation spikes (a recording grows to roughly
  /// checkpoint-blob size plus 16 bytes per sample plus beat records).
  explicit BufferRecorderSink(std::size_t reserve_bytes = 0) {
    if (reserve_bytes > 0) buf_.reserve(reserve_bytes);
  }
  void write(const std::uint8_t* data, std::size_t n) override {
    buf_.insert(buf_.end(), data, data + n);
  }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Exact (bit-level) QualitySummary equality — the comparison replay
/// verification uses, so NaN-free but rounding-sensitive fields cannot
/// drift silently.
[[nodiscard]] inline bool summaries_identical(const QualitySummary& a,
                                              const QualitySummary& b) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  if (a.beats != b.beats || a.usable != b.usable) return false;
  for (std::size_t i = 0; i < kBeatFlawCount; ++i)
    if (a.flaw_counts[i] != b.flaw_counts[i]) return false;
  return a.ecg_dropouts == b.ecg_dropouts && a.z_dropouts == b.z_dropouts &&
         a.detector_resets == b.detector_resets &&
         a.ensemble_folds_skipped == b.ensemble_folds_skipped &&
         a.snr_beats == b.snr_beats && bits(a.sum_snr_db) == bits(b.sum_snr_db) &&
         bits(a.min_snr_db) == bits(b.min_snr_db);
}

/// Observational tap on one live pipeline: construct against the engine
/// (writes the RHDR and the initial checkpoint), then hand it every
/// push's inputs and emissions. The recorder never mutates the engine
/// beyond calling its const-state checkpoint_into(). Lifetime: the sink
/// must outlive the recorder (owners declare the sink first).
class FlightRecorder {
 public:
  template <typename Pipeline>
  FlightRecorder(RecorderSink& sink, Pipeline& engine,
                 const FlightRecorderConfig& cfg = {})
      : sink_(sink), cfg_(cfg) {
    engine.checkpoint_into(ckpt_blob_);
    begin(engine.samples_consumed());
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one push: the raw chunk plus the beats it emitted (the tail
  /// of `emitted` — callers that accumulate into a reused vector pass
  /// only this push's slice). Writes a periodic checkpoint when the
  /// cadence has elapsed.
  template <typename Pipeline>
  void on_chunk(Pipeline& engine, dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                std::span<const BeatRecord> emitted) {
    record_chunk(ecg_mv, z_ohm, emitted);
    if (cfg_.checkpoint_interval > 0 &&
        engine.samples_consumed() >= next_checkpoint_at_) {
      engine.checkpoint_into(ckpt_blob_);
      record_checkpoint(engine.samples_consumed());
    }
  }

  /// Finalizes a recording whose session ran to completion: captures the
  /// finish() tail beats and the terminal QualitySummary. The recorder
  /// is closed afterwards; further taps throw.
  template <typename Pipeline>
  void on_finish(Pipeline& engine, std::span<const BeatRecord> tail) {
    record_end(tail, engine.quality_summary(), engine.samples_consumed(),
               /*finished=*/true);
  }

  /// Finalizes a recording cut mid-stream (stop_recording on a live
  /// session): writes FINI with the summary-so-far and finished=0, so
  /// replay verifies every recorded chunk but does not expect a tail.
  template <typename Pipeline>
  void on_stop(Pipeline& engine) {
    record_end({}, engine.quality_summary(), engine.samples_consumed(),
               /*finished=*/false);
  }

  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] std::uint64_t chunks_recorded() const { return chunks_; }
  [[nodiscard]] std::uint64_t checkpoints_recorded() const { return checkpoints_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }

 private:
  void begin(std::uint64_t start_samples);
  void record_chunk(dsp::SignalView ecg_mv, dsp::SignalView z_ohm,
                    std::span<const BeatRecord> emitted);
  void record_checkpoint(std::uint64_t samples);
  void record_end(std::span<const BeatRecord> tail, const QualitySummary& summary,
                  std::uint64_t samples, bool finished);
  void flush_scratch(StateWriter&& w);

  RecorderSink& sink_;
  FlightRecorderConfig cfg_;
  std::vector<std::uint8_t> scratch_;      ///< reused section framing buffer
  std::vector<std::uint8_t> ckpt_blob_;    ///< reused checkpoint_into target
  std::vector<unsigned char> beat_bytes_;  ///< reused serialize_beat target
  std::uint64_t next_checkpoint_at_ = 0;
  std::uint64_t chunks_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
};

/// Pull-based reader over a flight record. Construction parses and
/// validates the container header + RHDR; next() yields one event per
/// section, validating each frame/CRC before any payload is surfaced.
/// Every violation — bad magic, truncation, CRC mismatch, out-of-order
/// chunks, trailing sections after FINI — throws CheckpointError; a
/// hostile file can be refused but never cause UB.
class FlightReader {
 public:
  enum class EventKind : std::uint8_t { Checkpoint, Chunk, End };

  struct Event {
    EventKind kind = EventKind::Chunk;
    // Checkpoint / End
    std::uint64_t samples = 0;            ///< engine position of the capture
    std::span<const std::uint8_t> state;  ///< Checkpoint: nested pipeline blob
    // Chunk
    std::uint64_t chunk_index = 0;
    std::vector<double> ecg, z;           ///< buffers reused across next() calls
    std::span<const std::uint8_t> beat_bytes;  ///< Chunk: this push's beats; End: tail
    // End
    bool finished = false;
    QualitySummary summary{};
    std::uint64_t total_chunks = 0;
  };

  /// `file` must stay alive as long as the reader and any Event spans.
  explicit FlightReader(std::span<const std::uint8_t> file);

  [[nodiscard]] const FlightHeader& header() const { return header_; }

  /// Parses the next section into `ev` (reusing its buffers). Returns
  /// false at a clean end of file; a file may legally end without FINI
  /// (recording cut by a crash — the libretro-style "power loss" case),
  /// in which case ended() stays false.
  bool next(Event& ev);

  /// True once a FINI section has been consumed.
  [[nodiscard]] bool ended() const { return saw_end_; }

 private:
  StateReader r_;
  FlightHeader header_;
  std::uint64_t expect_chunk_ = 0;
  bool saw_end_ = false;
};

/// flight_verify(): full end-to-end determinism check of one recording.
struct FlightVerifyReport {
  bool ok = false;  ///< every comparison below passed
  std::uint64_t chunks = 0;
  std::uint64_t samples = 0;           ///< samples replayed (incl. start offset)
  std::uint64_t beats_recorded = 0;    ///< beats in the file (incl. tail)
  std::uint64_t beats_replayed = 0;
  std::int64_t first_divergent_chunk = -1;       ///< -1 = all chunks matched
  std::int64_t first_divergent_checkpoint = -1;  ///< periodic CKPT ordinal, -1 = none
  bool summary_match = true;  ///< QualitySummary bit-identical (when FINI present)
  bool tail_match = true;     ///< finish() tail beats byte-identical
  bool has_end = false;       ///< file carries FINI
  bool finished = false;      ///< FINI says the session ran finish()
};

/// Re-runs the recording end-to-end through a freshly constructed
/// pipeline (backend/fs/window/ensemble from RHDR, state from the
/// initial CKPT) and byte-compares every emitted beat, every periodic
/// checkpoint (unless `check_checkpoints` is false), and — when the
/// recording is finished — the finish() tail and QualitySummary.
/// Structural corruption of the file throws CheckpointError; a
/// *divergence* is a report with ok == false, localized to the first
/// offending chunk/checkpoint.
[[nodiscard]] FlightVerifyReport flight_verify(std::span<const std::uint8_t> file,
                                               bool check_checkpoints = true);

/// flight_seek(): time-travel replay from the latest checkpoint at or
/// before `target_sample` (absolute consumed-samples position).
struct FlightSeekReport {
  bool ok = false;                 ///< suffix replay matched the recording
  std::uint64_t target_sample = 0;
  std::uint64_t restored_at = 0;   ///< position of the checkpoint restored from
  std::uint64_t suffix_chunks = 0; ///< chunks re-run after the restore point
  std::uint64_t suffix_beats = 0;
  std::int64_t first_divergent_chunk = -1;
  bool summary_match = true;
  bool tail_match = true;
};

/// Restores the latest CKPT with samples <= target_sample (the initial
/// checkpoint backstops every target) and re-runs only the recorded
/// suffix, byte-comparing it against the recording — the "seek to the
/// anomalous beat" debugging move, and the proof that checkpoint-resume
/// equals straight-through replay.
[[nodiscard]] FlightSeekReport flight_seek(std::span<const std::uint8_t> file,
                                           std::uint64_t target_sample);

/// Reconstructs the full kernel state at the first chunk boundary at or
/// past `target_sample`: seeks to the nearest earlier checkpoint,
/// re-runs the gap, and serializes the reconstructed engine into
/// `state_out` (a standard pipeline checkpoint blob). Returns the exact
/// position reached and the beats emitted while getting there.
struct FlightStateReport {
  std::uint64_t samples = 0;
  std::uint64_t beats = 0;
};
[[nodiscard]] FlightStateReport flight_state_at(std::span<const std::uint8_t> file,
                                                std::uint64_t target_sample,
                                                std::vector<std::uint8_t>& state_out);

/// flight_compare(): divergence bisection between two recordings of the
/// *same input stream* (two builds, two ISAs, or two backends). Inputs
/// are compared raw; outputs (beat bytes, co-positioned checkpoints,
/// tail, summary) are compared byte-wise, and the first divergent chunk
/// is reported — the exact-chunk localization the fuzz corpus and CI
/// bisection use.
struct FlightCompareReport {
  bool inputs_identical = false;   ///< raw chunk streams byte-match
  bool outputs_identical = false;  ///< beats + checkpoints + tail + summary match
  std::uint64_t chunks_compared = 0;
  std::int64_t first_input_mismatch = -1;
  std::int64_t first_divergent_chunk = -1;       ///< first beat-byte divergence
  std::int64_t first_divergent_checkpoint = -1;  ///< ordinal among co-positioned CKPTs
  bool summary_match = true;
  bool tail_match = true;
};
[[nodiscard]] FlightCompareReport flight_compare(std::span<const std::uint8_t> a,
                                                 std::span<const std::uint8_t> b);

/// Non-throwing structural probe of a flight record (the C ABI boundary
/// check, mirroring probe_checkpoint): walks every frame, the RHDR, and
/// each section's internal layout; any violation yields valid == false.
struct FlightProbe {
  bool valid = false;
  FlightHeader header{};
  std::uint64_t chunks = 0;
  std::uint64_t checkpoints = 0;  ///< periodic checkpoints (excl. initial)
  std::uint64_t samples = 0;      ///< final recorded position
  std::uint64_t beats = 0;        ///< beats recorded (incl. tail)
  bool has_end = false;
  bool finished = false;
};
[[nodiscard]] FlightProbe probe_flight(std::span<const std::uint8_t> file) noexcept;

} // namespace icgkit::core
