// Beat ensemble averaging -- the classical ICG noise-reduction technique
// (Kubicek 1966 onwards) and a natural extension of the paper's
// beat-to-beat processing: R-aligned beats are averaged so uncorrelated
// artifacts cancel as 1/sqrt(N) while the cardiac waveform is preserved.
// The paper's future work (larger cohorts, comparison against reference
// ICG systems) is exactly where ensemble averaging is standard practice.
//
// The averager is windowed (default 8 beats) and robust: beats whose
// correlation with the current template falls below a threshold (ectopics,
// motion bursts) are excluded from the average.
#pragma once

#include "core/delineator.h"
#include "dsp/types.h"

#include <cstddef>
#include <optional>
#include <vector>

namespace icgkit::core {

struct EnsembleConfig {
  std::size_t window_beats = 8;      ///< how many accepted beats to average
  double pre_r_s = 0.10;             ///< segment start before R
  double post_r_s = 0.60;            ///< segment end after R
  double min_template_corr = 0.6;    ///< acceptance threshold vs template
  std::size_t min_beats_for_gate = 3;///< gate only once a template exists
};

/// Windowed, correlation-gated ensemble averager over R-aligned beats.
class EnsembleAverager {
 public:
  EnsembleAverager(dsp::SampleRate fs, const EnsembleConfig& cfg = {});

  /// Adds the beat whose R peak is at `r_idx` of `icg`. Returns false if
  /// the segment is out of bounds or rejected by the correlation gate.
  bool add_beat(dsp::SignalView icg, std::size_t r_idx);

  /// The current ensemble template (empty until the first accepted beat).
  /// Sample 0 corresponds to R - pre_r_s; the R peak sits at r_offset().
  [[nodiscard]] dsp::Signal average() const;

  [[nodiscard]] std::size_t r_offset() const { return pre_samples_; }
  /// Length of one R-aligned segment (pre + post window) in samples.
  [[nodiscard]] std::size_t segment_samples() const { return len_samples_; }
  [[nodiscard]] std::size_t beats_in_window() const { return window_.size(); }
  [[nodiscard]] std::size_t beats_rejected() const { return rejected_; }

  /// Delineates the ensemble template itself (R at r_offset, bound at the
  /// template end). Returns nullopt until enough beats accumulated.
  [[nodiscard]] std::optional<BeatDelineation> delineate_average(
      const IcgDelineator& delineator) const;

  void reset();

  /// Serializes the beat window and rejection counter for
  /// core::Checkpoint round trips; load_state() rejects blobs whose
  /// segment length or window size disagrees with this instance's
  /// configuration.
  template <typename W>
  void save_state(W& w) const {
    w.u64(len_samples_);
    w.u64(window_.size());
    for (const dsp::Signal& beat : window_)
      for (const double v : beat) w.f64(v);
    w.u64(rejected_);
  }

  template <typename R>
  void load_state(R& r) {
    if (r.u64() != len_samples_) r.fail("EnsembleAverager: segment length mismatch");
    const std::size_t n = r.u64();
    if (n > cfg_.window_beats) r.fail("EnsembleAverager: beat window overflow");
    window_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      dsp::Signal beat(len_samples_);
      for (double& v : beat) v = r.f64();
      window_.push_back(std::move(beat));
    }
    rejected_ = r.u64();
  }

 private:
  dsp::SampleRate fs_;
  EnsembleConfig cfg_;
  std::size_t pre_samples_;
  std::size_t len_samples_;
  std::vector<dsp::Signal> window_;
  std::size_t rejected_ = 0;
};

} // namespace icgkit::core
