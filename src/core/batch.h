// SIMD multi-session batch engine: W co-scheduled sessions advancing in
// lockstep through one data-parallel stage front.
//
// The fleet's hot path is thousands of *identical* per-session filter
// cascades, each loading the same coefficients to process one double.
// SessionBatch<W> packs W same-configuration sessions into a single
// pipeline instantiated over dsp::BatchBackend<W>: every streaming
// kernel of the sample-rate front (ECG cleaner, ICG conditioner, the
// Pan-Tompkins filter front) ticks once per sample with LaneVec<W>
// operands, loading each coefficient once for W sessions. Control flow
// that diverges per session — the QRS decision tail and everything past
// the feature boundary — fans out into W scalar structures: per-lane
// QrsDecisionTail (inside ecg::BatchOnlinePanTompkins) and per-lane
// core::BeatAssembler, the same per-beat tail the scalar engine runs.
//
// Identity contract: each lane's emitted BeatRecords are byte-identical
// to a scalar StreamingBeatPipeline fed the same per-lane stream (the
// batch backend evaluates the exact scalar double expression per lane
// and the build disables FMA contraction; see dsp/backend.h). A lane in
// a contact-gap dropout needs no masking: the scalar engine keeps
// filtering through gaps too, so divergence lives entirely in the
// per-lane tails.
//
// Lifecycle interop with the scalar world runs through the checkpoint
// format: pack() consumes W scalar checkpoint blobs (cross-validated
// for configuration agreement), unpack() produces W blobs any scalar
// engine restores — which is how the fleet dissolves a batch back to
// per-session engines when lanes diverge (finish, migration, chunk
// shape mismatch). The lane adaptors below rewrite the scalar wire
// format per lane, so the blob layout is exactly
// StreamingBeatPipeline's version-1 format, golden fixtures included.
#pragma once

#include "core/checkpoint.h"
#include "core/pipeline.h"
#include "core/stream.h"
#include "dsp/backend.h"
#include "dsp/simd.h"
#include "ecg/pan_tompkins.h"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace icgkit::core {

/// StateWriter fan-out for batched kernels: uniform fields (counters,
/// flags, configuration) broadcast to all W per-lane writers; LaneVec
/// values scatter one scalar per lane. Kernels with per-lane state
/// (BatchStreamingExtremum, the QRS decision tails) grab a single lane's
/// writer via lane_writer() and serialize the plain scalar layout. The
/// result: W independent byte streams, each exactly the scalar kernel's
/// wire format.
template <std::size_t W>
class LaneStateWriter {
 public:
  /// `lanes` must point at W writers outliving this adaptor.
  explicit LaneStateWriter(StateWriter* lanes) : lanes_(lanes) {}

  void u8(std::uint8_t v) { for (std::size_t l = 0; l < W; ++l) lanes_[l].u8(v); }
  void u32(std::uint32_t v) { for (std::size_t l = 0; l < W; ++l) lanes_[l].u32(v); }
  void u64(std::uint64_t v) { for (std::size_t l = 0; l < W; ++l) lanes_[l].u64(v); }
  void i32(std::int32_t v) { for (std::size_t l = 0; l < W; ++l) lanes_[l].i32(v); }
  void i64(std::int64_t v) { for (std::size_t l = 0; l < W; ++l) lanes_[l].i64(v); }
  void f64(double v) { for (std::size_t l = 0; l < W; ++l) lanes_[l].f64(v); }
  void boolean(bool v) { for (std::size_t l = 0; l < W; ++l) lanes_[l].boolean(v); }

  void value(const dsp::LaneVec<W>& v) {
    for (std::size_t l = 0; l < W; ++l) lanes_[l].value(v.lane(l));
  }

  void begin_section(const char (&tag)[5]) {
    for (std::size_t l = 0; l < W; ++l) lanes_[l].begin_section(tag);
  }
  void end_section() {
    for (std::size_t l = 0; l < W; ++l) lanes_[l].end_section();
  }

  [[nodiscard]] StateWriter& lane_writer(std::size_t l) { return lanes_[l]; }

 private:
  StateWriter* lanes_;
};

/// StateReader fan-in, the inverse of LaneStateWriter: uniform fields
/// are read from every lane and must agree bit for bit — the batched
/// kernels advance all lanes in lockstep, so any disagreement means the
/// blobs came from sessions at different stream positions (or different
/// configurations) and packing them would corrupt every lane. LaneVec
/// values gather one scalar per lane; per-lane kernels read their lane's
/// plain reader via lane_reader().
template <std::size_t W>
class LaneStateReader {
 public:
  /// `lanes` must point at W readers outliving this adaptor.
  explicit LaneStateReader(StateReader* lanes) : lanes_(lanes) {}

  std::uint8_t u8() { return uniform("u8", [](StateReader& r) { return r.u8(); }); }
  std::uint32_t u32() { return uniform("u32", [](StateReader& r) { return r.u32(); }); }
  std::uint64_t u64() { return uniform("u64", [](StateReader& r) { return r.u64(); }); }
  std::int32_t i32() { return uniform("i32", [](StateReader& r) { return r.i32(); }); }
  std::int64_t i64() { return uniform("i64", [](StateReader& r) { return r.i64(); }); }
  bool boolean() { return uniform("boolean", [](StateReader& r) { return r.boolean(); }); }
  double f64() {
    // Compared as bit patterns: lockstep lanes must match exactly, and a
    // NaN payload difference is as much a divergence as any other.
    return std::bit_cast<double>(
        uniform("f64", [](StateReader& r) { return r.u64(); }));
  }

  template <typename T>
  T value() {
    static_assert(std::is_same_v<T, dsp::LaneVec<W>>,
                  "LaneStateReader::value: batched kernels read LaneVec values");
    dsp::LaneVec<W> v{};
    for (std::size_t l = 0; l < W; ++l) v.set_lane(l, lanes_[l].template value<double>());
    return v;
  }

  void begin_section(const char (&tag)[5]) {
    for (std::size_t l = 0; l < W; ++l) lanes_[l].begin_section(tag);
  }
  void end_section() {
    for (std::size_t l = 0; l < W; ++l) lanes_[l].end_section();
  }

  [[nodiscard]] std::size_t section_remaining() const {
    return lanes_[0].section_remaining();
  }

  [[noreturn]] void fail(const std::string& msg) const { throw CheckpointError(msg); }

  [[nodiscard]] StateReader& lane_reader(std::size_t l) { return lanes_[l]; }

 private:
  template <typename F>
  auto uniform(const char* what, F&& read) {
    auto v0 = read(lanes_[0]);
    for (std::size_t l = 1; l < W; ++l)
      if (read(lanes_[l]) != v0)
        throw CheckpointError(std::string("SessionBatch: lanes disagree on a uniform ") +
                              what + " field (sessions not in lockstep)");
    return v0;
  }

  StateReader* lanes_;
};

/// Runtime-width interface over SessionBatch<4> / SessionBatch<8>, so
/// the fleet can select the lane count from FleetConfig::batch_width
/// without being templated itself. All `out` parameters point at W
/// vectors (one per lane), appended to, never cleared.
class SessionBatchBase {
 public:
  virtual ~SessionBatchBase() = default;

  [[nodiscard]] virtual std::size_t width() const = 0;

  /// Loads W scalar session checkpoints (StreamingBeatPipeline blobs,
  /// one per lane) into the batched engine. The sessions must share the
  /// batch's configuration and be at the same stream position — any
  /// disagreement throws CheckpointError and leaves the batch unusable.
  virtual void pack(const std::vector<std::vector<std::uint8_t>>& blobs) = 0;

  /// Serializes the batch back into W scalar checkpoints, each
  /// restorable by a same-configuration StreamingBeatPipeline (blob l =
  /// lane l). `blobs` is resized to W; element capacity is reused.
  virtual void unpack(std::vector<std::vector<std::uint8_t>>& blobs) const = 0;

  /// Advances all lanes by `len` samples in lockstep. ecg_mv/z_ohm point
  /// at W per-lane arrays of `len` samples; lane l's completed beats are
  /// appended to out[l].
  virtual void push(const double* const* ecg_mv, const double* const* z_ohm,
                    std::size_t len, std::vector<BeatRecord>* out) = 0;

  /// End-of-stream flush for all lanes in lockstep.
  virtual void finish(std::vector<BeatRecord>* out) = 0;

  [[nodiscard]] virtual const QualitySummary& lane_quality(std::size_t lane) const = 0;
  [[nodiscard]] virtual bool lane_in_dropout(std::size_t lane) const = 0;
  /// Samples consumed per lane (identical across lanes, by lockstep).
  [[nodiscard]] virtual std::size_t samples_consumed() const = 0;

  /// Opt-in front-vs-tail wall-time instrumentation for push(): when
  /// enabled, each push accumulates the lockstep-front phase (SoA input
  /// packing + fused filter/feature chains) into front_ns() and the
  /// per-lane scalar replay (gap machine, decision tails, assemblers)
  /// into tail_ns(). Off by default — the clock reads would perturb the
  /// gated throughput numbers, so benches measure speedups with it off
  /// and take the breakdown from a separate instrumented pass.
  virtual void enable_profiling(bool) {}
  [[nodiscard]] virtual std::uint64_t front_ns() const { return 0; }
  [[nodiscard]] virtual std::uint64_t tail_ns() const { return 0; }
};

/// W lockstep sessions through one BatchBackend<W> stage front; see the
/// header comment for the architecture and the identity contract.
template <std::size_t W>
class SessionBatch final : public SessionBatchBase {
 public:
  using backend_t = dsp::BatchBackend<W>;
  using sample_t = typename backend_t::sample_t;

  explicit SessionBatch(dsp::SampleRate fs, const PipelineConfig& cfg = {},
                        double window_s = 12.0)
      : fs_(fs), cfg_(cfg),
        window_samples_(static_cast<std::size_t>(std::max(4.0, window_s) * fs)),
        ecg_stage_(fs, cfg.ecg_filter),
        icg_stage_(fs, cfg.icg_filter, 0),
        qrs_(fs, cfg.qrs) {
    // The scalar double engine's saturation rails come from the default
    // scaling policy; use the same ones so lane verdicts match it.
    const dsp::Q31ScalingPolicy scaling{};
    assemblers_.reserve(W);
    for (std::size_t l = 0; l < W; ++l)
      assemblers_.emplace_back(fs, cfg, window_samples_, /*z_scale=*/1.0,
                               /*icg_scale=*/1.0, scaling.ecg_fullscale_mv,
                               scaling.z_fullscale_ohm, icg_stage_.latency());
    ecg_scratch_.reserve(512);
    icg_scratch_.reserve(512);
    for (auto& rs : r_scratch_) rs.reserve(64);
  }

  [[nodiscard]] std::size_t width() const override { return W; }

  /// Two-phase lockstep advance. Phase 1 packs the W input streams into
  /// SoA lane vectors and runs the fused fronts (ICG conditioner, ECG
  /// cleaner, QRS feature chain) over the whole chunk — the only part
  /// whose work is W-wide SIMD. Phase 2 replays the chunk lane-major
  /// through the scalar tails: each lane's pending beats queue up during
  /// the front tick and drain here, per raw sample, in exactly the
  /// scalar engine's ingest order. Lanes share no tail state, so
  /// lane-major replay emits byte-identical BeatRecords to the
  /// sample-major interleaving (and to W scalar sessions).
  void push(const double* const* ecg_mv, const double* const* z_ohm, std::size_t len,
            std::vector<BeatRecord>* out) override {
    if (len == 0) return;
    const bool prof = profile_;
    std::chrono::steady_clock::time_point t0, t1;
    if (prof) t0 = std::chrono::steady_clock::now();

    e_arena_.clear();
    z_arena_.clear();
    for (std::size_t i = 0; i < len; ++i) {
      sample_t e{}, z{};
      for (std::size_t l = 0; l < W; ++l) {
        e.set_lane(l, ecg_mv[l][i]);
        z.set_lane(l, z_ohm[l][i]);
      }
      e_arena_.push_back(e);
      z_arena_.push_back(z);
    }
    icg_scratch_.clear();
    icg_cum_.clear();
    icg_stage_.process_chunk(z_arena_, icg_scratch_, icg_cum_);
    ecg_scratch_.clear();
    ecg_cum_.clear();
    ecg_stage_.process_chunk(e_arena_, ecg_scratch_, ecg_cum_);
    feat_out_.clear();
    feat_cum_.clear();
    qrs_.front_chunk(ecg_scratch_, feat_out_, feat_cum_);

    if (prof) t1 = std::chrono::steady_clock::now();

    for (std::size_t l = 0; l < W; ++l) {
      auto& a = assemblers_[l];
      auto& tail = qrs_.decision_tail(l);
      auto& rs = r_scratch_[l];
      std::uint32_t icg_lo = 0, ecg_lo = 0;
      for (std::size_t i = 0; i < len; ++i) {
        a.on_raw_sample(ecg_mv[l][i], z_ohm[l][i], z_arena_[i].lane(l),
                        [this, l] { qrs_.soft_reset_lane(l); });
        for (std::uint32_t k = icg_lo; k < icg_cum_[i]; ++k)
          a.on_icg_sample(icg_scratch_[k].lane(l));
        icg_lo = icg_cum_[i];
        a.maybe_drain_ensemble();

        rs.clear();
        for (std::uint32_t k = ecg_lo; k < ecg_cum_[i]; ++k) {
          tail.note_input(ecg_scratch_[k].lane(l));
          const std::uint32_t f_lo = k > 0 ? feat_cum_[k - 1] : 0;
          for (std::uint32_t f = f_lo; f < feat_cum_[k]; ++f)
            tail.on_feature_sample(feat_out_[f].lane(l), rs);
        }
        ecg_lo = ecg_cum_[i];
        for (const std::size_t r : rs) a.on_r_peak(r);
        a.drain_ready(out[l]);
      }
    }

    if (prof) {
      const auto t2 = std::chrono::steady_clock::now();
      front_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
      tail_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count();
    }
  }

  void enable_profiling(bool on) override { profile_ = on; }
  [[nodiscard]] std::uint64_t front_ns() const override { return front_ns_; }
  [[nodiscard]] std::uint64_t tail_ns() const override { return tail_ns_; }

  void finish(std::vector<BeatRecord>* out) override {
    icg_scratch_.clear();
    icg_stage_.finish(icg_scratch_);
    for (const sample_t v : icg_scratch_)
      for (std::size_t l = 0; l < W; ++l) assemblers_[l].on_icg_sample(v.lane(l));
    for (std::size_t l = 0; l < W; ++l) assemblers_[l].maybe_drain_ensemble();

    ecg_scratch_.clear();
    ecg_stage_.finish(ecg_scratch_);
    for (auto& rs : r_scratch_) rs.clear();
    for (const sample_t v : ecg_scratch_) qrs_.push(v, r_scratch_.data());
    qrs_.finish(r_scratch_.data());
    for (std::size_t l = 0; l < W; ++l) {
      for (const std::size_t r : r_scratch_[l]) assemblers_[l].on_r_peak(r);
      assemblers_[l].drain_ready(out[l]);
    }
  }

  void pack(const std::vector<std::vector<std::uint8_t>>& blobs) override {
    if (blobs.size() != W)
      throw CheckpointError("SessionBatch: pack() expects exactly W lane blobs");
    std::vector<StateReader> readers;
    readers.reserve(W);
    for (const auto& blob : blobs) readers.emplace_back(blob);
    LaneStateReader<W> r(readers.data());

    r.begin_section("CFG ");
    if (r.u8() != 0) r.fail("SessionBatch: lanes must be double-backend sessions");
    if (r.f64() != fs_) r.fail("SessionBatch: sample-rate mismatch");
    if (r.u64() != window_samples_) r.fail("SessionBatch: window mismatch");
    if (r.boolean() != cfg_.enable_ensemble)
      r.fail("SessionBatch: ensemble-stage mismatch");
    r.end_section();

    r.begin_section("ECGC");
    ecg_stage_.load_state(r);
    r.end_section();

    r.begin_section("ICGC");
    icg_stage_.load_state(r);
    r.end_section();

    r.begin_section("QRSD");
    qrs_.load_state(r);
    r.end_section();

    // The per-beat tails are scalar per lane: each assembler reads its
    // lane's plain reader, section framing shared so the streams stay in
    // step.
    for (std::size_t l = 0; l < W; ++l) {
      StateReader& lr = r.lane_reader(l);
      lr.begin_section("RING");
      assemblers_[l].load_ring_body(lr);
      lr.end_section();
      lr.begin_section("BEAT");
      assemblers_[l].load_beat_body(lr);
      lr.end_section();
      lr.begin_section("GAPS");
      assemblers_[l].load_gaps_body(lr);
      lr.end_section();
      lr.begin_section("QSUM");
      assemblers_[l].load_qsum_body(lr);
      lr.end_section();
      lr.begin_section("ENSB");
      assemblers_[l].load_ensb_body(lr);
      lr.end_section();
      if (!lr.at_end())
        throw CheckpointError("SessionBatch: trailing bytes in a lane blob");
    }
  }

  void unpack(std::vector<std::vector<std::uint8_t>>& blobs) const override {
    blobs.resize(W);
    std::vector<StateWriter> writers;
    writers.reserve(W);
    for (auto& blob : blobs) writers.emplace_back(std::move(blob));
    LaneStateWriter<W> w(writers.data());

    w.begin_section("CFG ");
    w.u8(0);
    w.f64(fs_);
    w.u64(window_samples_);
    w.boolean(cfg_.enable_ensemble);
    w.end_section();

    w.begin_section("ECGC");
    ecg_stage_.save_state(w);
    w.end_section();

    w.begin_section("ICGC");
    icg_stage_.save_state(w);
    w.end_section();

    w.begin_section("QRSD");
    qrs_.save_state(w);
    w.end_section();

    for (std::size_t l = 0; l < W; ++l) {
      StateWriter& lw = w.lane_writer(l);
      lw.begin_section("RING");
      assemblers_[l].save_ring_body(lw);
      lw.end_section();
      lw.begin_section("BEAT");
      assemblers_[l].save_beat_body(lw);
      lw.end_section();
      lw.begin_section("GAPS");
      assemblers_[l].save_gaps_body(lw);
      lw.end_section();
      lw.begin_section("QSUM");
      assemblers_[l].save_qsum_body(lw);
      lw.end_section();
      lw.begin_section("ENSB");
      assemblers_[l].save_ensb_body(lw);
      lw.end_section();
      blobs[l] = lw.take();
    }
  }

  [[nodiscard]] const QualitySummary& lane_quality(std::size_t lane) const override {
    return assemblers_[lane].quality_summary();
  }
  [[nodiscard]] bool lane_in_dropout(std::size_t lane) const override {
    return assemblers_[lane].in_dropout();
  }
  [[nodiscard]] std::size_t samples_consumed() const override {
    return assemblers_[0].samples_consumed();
  }

 private:
  dsp::SampleRate fs_;
  PipelineConfig cfg_;
  std::size_t window_samples_;

  BasicEcgCleanerStage<backend_t> ecg_stage_;
  BasicIcgConditionerStage<backend_t> icg_stage_;
  ecg::BatchOnlinePanTompkins<W> qrs_;
  std::vector<BeatAssembler<dsp::DoubleBackend>> assemblers_; ///< one per lane

  std::vector<sample_t> ecg_scratch_, icg_scratch_;
  std::array<std::vector<std::size_t>, W> r_scratch_;
  // Two-phase push arenas: SoA-packed inputs, the QRS front's feature
  // stream, and each front's per-input cumulative-output counts. Reused
  // across chunks.
  std::vector<sample_t> e_arena_, z_arena_;
  std::vector<sample_t> feat_out_;
  std::vector<std::uint32_t> icg_cum_, ecg_cum_, feat_cum_;

  bool profile_ = false;
  std::uint64_t front_ns_ = 0, tail_ns_ = 0;
};

// Compiled once in batch.cpp (same pattern as the scalar engine).
extern template class SessionBatch<4>;
extern template class SessionBatch<8>;

/// Supported lane counts for make_session_batch / FleetConfig::batch_width.
[[nodiscard]] bool session_batch_width_supported(std::size_t width);

/// Runtime-width factory: width must be 4 or 8 (throws
/// std::invalid_argument otherwise).
std::unique_ptr<SessionBatchBase> make_session_batch(std::size_t width,
                                                     dsp::SampleRate fs,
                                                     const PipelineConfig& cfg = {},
                                                     double window_s = 12.0);

} // namespace icgkit::core
