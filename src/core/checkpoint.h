// Session checkpoint/restore wire format: the long-lived state capture
// substrate the elastic fleet is built on.
//
// A checkpoint is a self-describing binary blob:
//
//   [magic u32 "ICGK"] [version u32] [section]*
//
// where every section is independently framed and integrity-checked:
//
//   [tag 4 bytes] [payload length u32] [payload] [CRC-32 of payload u32]
//
// All multi-byte integers are little-endian regardless of host order;
// doubles travel as the IEEE-754 bit pattern of their value (u64). The
// format is therefore stable across architectures and compilers, and a
// blob saved by one process restores bit-exactly in another — the
// property the fleet's live migration and the round-trip fuzz CI job
// pin down.
//
// Integrity rules (enforced by StateReader, which throws CheckpointError
// — never UB — on violation):
//   - magic and version must match exactly (a version-N reader refuses
//     version-M blobs instead of guessing);
//   - a section's tag, length and CRC are validated *before* any payload
//     byte is handed to a kernel, so a corrupted or truncated blob fails
//     at the frame, not inside a loader;
//   - every read is bounds-checked against the current section; a loader
//     must consume its section exactly (end_section() verifies), so a
//     blob with missing or trailing state is rejected even when its CRC
//     is intact;
//   - structural parameters (ring capacities, kernel lengths, backend
//     tag) are written alongside the state and re-validated by each
//     loader against the restore target's construction-time shape, so a
//     blob can only be restored into an engine built with the same
//     configuration.
//
// The writer/reader primitives are deliberately duck-typed targets: the
// dsp/ecg streaming kernels serialize through `template <typename W>
// save_state(W&)` members, so the lower layers never include this
// header (no dsp -> core dependency cycle) while core composes them
// with the concrete StateWriter/StateReader below.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "support/contract.h"

namespace icgkit::core {

/// Any structural violation of a checkpoint blob: bad magic/version,
/// frame truncation, CRC mismatch, section over/under-consumption, or a
/// semantic mismatch a kernel loader reports via StateReader::fail().
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error("checkpoint: " + what) {}
};

/// "ICGK" read as a little-endian u32.
inline constexpr std::uint32_t kCheckpointMagic = 0x4B474349u;
/// Bump on any incompatible layout change; readers refuse other versions.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// CRC-32 (IEEE 802.3 polynomial, the zlib crc32) of `n` bytes.
std::uint32_t checkpoint_crc32(const std::uint8_t* data, std::size_t n);

/// Result of probe_checkpoint(): the non-throwing structural verdict on
/// a blob plus the construction parameters its leading "CFG " section
/// carries (valid only when `valid` is true).
struct CheckpointProbe {
  /// Magic, version, and every section frame (tag, bounds, CRC) check
  /// out, and the first section is a well-formed pipeline "CFG ".
  bool valid = false;
  bool backend_fixed = false;   ///< CFG: blob written by the Q31 backend
  double fs = 0.0;              ///< CFG: source sample rate
  std::uint64_t window_samples = 0;  ///< CFG: look-back window length
  bool ensemble = false;        ///< CFG: ensemble stage present
};

/// Walks a pipeline checkpoint blob's entire frame — magic, version,
/// every section's tag/length/CRC — and parses the leading "CFG "
/// section, *without ever raising*: any violation just yields
/// `valid == false`. This is the checked pre-validation the C ABI
/// boundary runs before handing a blob to restore(), so that in the
/// no-exceptions (firmware) profile a corrupt, truncated, or
/// wrong-configuration blob is refused with an error code instead of
/// reaching a StateReader panic.
[[nodiscard]] CheckpointProbe probe_checkpoint(
    std::span<const std::uint8_t> blob) noexcept;

/// Serializes checkpoint state into the framed format above. Primitive
/// puts append little-endian bytes to the current section; sections are
/// opened/closed explicitly and may not nest. The magic/version header
/// is written at construction.
class StateWriter {
 public:
  /// Starts a blob, reusing `buf`'s capacity (the fleet's migration path
  /// hands each session's blob buffer back and forth so steady-state
  /// migrations do not allocate once warmed up).
  explicit StateWriter(std::vector<std::uint8_t> buf = {}) : buf_(std::move(buf)) {
    buf_.clear();
    u32(kCheckpointMagic);
    u32(kCheckpointVersion);
  }

  /// A headerless writer that emits framed sections only, for appending
  /// to a stream whose magic/version header was already written (the
  /// flight recorder frames each incremental section into a reused
  /// scratch buffer and flushes it to a sink). Same reuse semantics as
  /// the normal constructor: `buf`'s capacity is recycled.
  [[nodiscard]] static StateWriter continuation(std::vector<std::uint8_t> buf = {}) {
    StateWriter w(std::move(buf), /*header=*/false);
    return w;
  }

  // -- primitives (little-endian) --
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  /// Appends `n` doubles in wire order (LE u64 bit patterns). On a
  /// little-endian host the in-memory array already IS the wire layout,
  /// so this is one bulk copy — the flight recorder's per-chunk hot
  /// path, where an element-wise loop would dominate recording cost.
  void f64_array(const double* p, std::size_t n) {
    if (n == 0) return;
    if constexpr (std::endian::native == std::endian::little) {
      const auto* raw = reinterpret_cast<const std::uint8_t*>(p);
      buf_.insert(buf_.end(), raw, raw + n * sizeof(double));
    } else {
      for (std::size_t i = 0; i < n; ++i) f64(p[i]);
    }
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Appends `n` raw bytes verbatim — the escape hatch for embedding an
  /// already-serialized blob (a nested pipeline checkpoint inside a
  /// flight-record section) without re-framing it element by element.
  void bytes(const std::uint8_t* p, std::size_t n) { buf_.insert(buf_.end(), p, p + n); }

  // -- generic overloads, the targets the backend-templated kernels and
  //    dsp::RingBuffer write sample_t / acc_t / mark / index values
  //    through --
  void value(double v) { f64(v); }
  void value(std::int32_t v) { i32(v); }
  void value(std::int64_t v) { i64(v); }
  void value(std::uint64_t v) { u64(v); }
  void value(std::uint8_t v) { u8(v); }

  /// Opens a section with a 4-character tag ("QRSD"). The length and CRC
  /// are patched in by end_section().
  void begin_section(const char (&tag)[5]) {
    if (section_start_ != kNone)
      ICGKIT_THROW(CheckpointError(std::string("section '") + tag + "' opened inside another"));
    buf_.insert(buf_.end(), tag, tag + 4);
    section_start_ = buf_.size();
    u32(0);  // length placeholder
  }

  void end_section() {
    if (section_start_ == kNone) ICGKIT_THROW(CheckpointError("end_section without a section"));
    const std::size_t payload_begin = section_start_ + 4;
    const std::size_t len = buf_.size() - payload_begin;
    for (int i = 0; i < 4; ++i)
      buf_[section_start_ + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    u32(checkpoint_crc32(buf_.data() + payload_begin, len));
    section_start_ = kNone;
  }

  /// The finished blob (all sections must be closed). Moves the buffer
  /// out; the writer is spent afterwards.
  [[nodiscard]] std::vector<std::uint8_t> take() {
    if (section_start_ != kNone) ICGKIT_THROW(CheckpointError("take() inside an open section"));
    return std::move(buf_);
  }

 private:
  StateWriter(std::vector<std::uint8_t> buf, bool header) : buf_(std::move(buf)) {
    buf_.clear();
    if (header) {
      u32(kCheckpointMagic);
      u32(kCheckpointVersion);
    }
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::uint8_t> buf_;
  std::size_t section_start_ = kNone;
};

/// Parses and validates a checkpoint blob. Construction checks the
/// magic/version header; begin_section() validates the frame (tag,
/// bounds, CRC) before any payload is readable; every primitive read is
/// bounds-checked. All violations raise CheckpointError.
class StateReader {
 public:
  explicit StateReader(std::span<const std::uint8_t> blob) : blob_(blob) {
    if (u32_at_cursor("magic") != kCheckpointMagic)
      ICGKIT_THROW(CheckpointError("bad magic (not a checkpoint blob)"));
    const std::uint32_t version = u32_at_cursor("version");
    if (version != kCheckpointVersion)
      ICGKIT_THROW(CheckpointError("unsupported format version " + std::to_string(version) +
                            " (reader supports " + std::to_string(kCheckpointVersion) + ")"));
  }

  /// Opens the next section, which must carry exactly `tag`; validates
  /// the frame and the payload CRC before returning.
  void begin_section(const char (&tag)[5]) {
    if (in_section_) ICGKIT_THROW(CheckpointError(std::string("section '") + tag +
                                           "' opened inside another"));
    if (blob_.size() - pos_ < 8)
      ICGKIT_THROW(CheckpointError(std::string("truncated before section '") + tag + "'"));
    if (std::memcmp(blob_.data() + pos_, tag, 4) != 0)
      ICGKIT_THROW(CheckpointError(std::string("expected section '") + tag + "', found '" +
                            std::string(reinterpret_cast<const char*>(blob_.data() + pos_), 4) +
                            "'"));
    pos_ += 4;
    const std::uint32_t len = u32_at_cursor("section length");
    // Subtraction form: `len + 4` could wrap where size_t is 32 bits,
    // letting a corrupted length field slip past the bounds check.
    const std::size_t remaining = blob_.size() - pos_;
    if (remaining < 4 || len > remaining - 4)
      ICGKIT_THROW(CheckpointError(std::string("section '") + tag + "' truncated"));
    const std::uint32_t stored = le32(blob_.data() + pos_ + len);
    const std::uint32_t computed = checkpoint_crc32(blob_.data() + pos_, len);
    if (stored != computed)
      ICGKIT_THROW(CheckpointError(std::string("section '") + tag + "' CRC mismatch"));
    section_end_ = pos_ + len;
    in_section_ = true;
  }

  /// Closes the current section; the loader must have consumed exactly
  /// its payload (missing state is as fatal as trailing state).
  void end_section() {
    if (!in_section_) ICGKIT_THROW(CheckpointError("end_section without a section"));
    if (pos_ != section_end_)
      ICGKIT_THROW(CheckpointError("section not fully consumed (" +
                            std::to_string(section_end_ - pos_) + " bytes left)"));
    pos_ += 4;  // the validated CRC
    in_section_ = false;
  }

  [[nodiscard]] bool at_end() const { return !in_section_ && pos_ == blob_.size(); }

  /// Copies the next section's 4-character tag into `out` (NUL-padded)
  /// without consuming it, so a reader of a heterogeneous stream (the
  /// flight-record file interleaves chunk and checkpoint sections) can
  /// dispatch before committing to begin_section(). Returns false at a
  /// clean end of the blob; throws if bytes remain but too few for a
  /// section header.
  [[nodiscard]] bool peek_tag(char (&out)[5]) {
    if (in_section_) ICGKIT_THROW(CheckpointError("peek_tag inside a section"));
    if (pos_ == blob_.size()) return false;
    if (blob_.size() - pos_ < 8)
      ICGKIT_THROW(CheckpointError("truncated section header"));
    std::memcpy(out, blob_.data() + pos_, 4);
    out[4] = '\0';
    return true;
  }

  // -- primitives --
  std::uint8_t u8() { return take_bytes(1)[0]; }
  std::uint32_t u32() { return le32(take_bytes(4)); }
  std::uint64_t u64() {
    const std::uint8_t* p = take_bytes(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  /// Bounds-checked bulk read of `n` doubles (counterpart of
  /// StateWriter::f64_array): one memcpy on a little-endian host.
  void f64_array(double* out, std::size_t n) {
    if (n == 0) return;
    const std::uint8_t* p = take_bytes(n * sizeof(double));
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out, p, n * sizeof(double));
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t v = 0;
        for (int b = 7; b >= 0; --b) v = (v << 8) | p[i * 8 + b];
        out[i] = std::bit_cast<double>(v);
      }
    }
  }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) fail("boolean byte is neither 0 nor 1");
    return v == 1;
  }
  /// A bounds-checked view of the next `n` raw payload bytes (the
  /// counterpart of StateWriter::bytes). The span aliases the blob — it
  /// stays valid only as long as the blob the reader was built over.
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) {
    return {take_bytes(n), n};
  }

  /// Typed read for backend-templated kernels (sample_t / acc_t) and
  /// dsp::RingBuffer elements.
  template <typename T>
  T value() {
    if constexpr (std::is_same_v<T, double>) return f64();
    else if constexpr (std::is_same_v<T, std::int32_t>) return i32();
    else if constexpr (std::is_same_v<T, std::int64_t>) return i64();
    else if constexpr (std::is_same_v<T, std::uint64_t>) return u64();
    else if constexpr (std::is_same_v<T, std::uint8_t>) return u8();
    else static_assert(sizeof(T) == 0, "StateReader::value: unsupported type");
  }

  /// Bytes left in the current section — the bound loaders use to reject
  /// absurd element counts before allocating.
  [[nodiscard]] std::size_t section_remaining() const {
    return in_section_ ? section_end_ - pos_ : 0;
  }

  /// Semantic-mismatch escape hatch for kernel loaders (ring capacity or
  /// kernel length differs from the restore target's construction).
  [[noreturn]] void fail(const std::string& msg) const { ICGKIT_THROW(CheckpointError(msg)); }

 private:
  static std::uint32_t le32(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }
  std::uint32_t u32_at_cursor(const char* what) {
    if (blob_.size() - pos_ < 4)
      ICGKIT_THROW(CheckpointError(std::string("truncated reading ") + what));
    const std::uint32_t v = le32(blob_.data() + pos_);
    pos_ += 4;
    return v;
  }
  const std::uint8_t* take_bytes(std::size_t n) {
    const std::size_t limit = in_section_ ? section_end_ : blob_.size();
    if (limit - pos_ < n) fail("read past end of section");
    const std::uint8_t* p = blob_.data() + pos_;
    pos_ += n;
    return p;
  }

  std::span<const std::uint8_t> blob_;
  std::size_t pos_ = 0;
  std::size_t section_end_ = 0;
  bool in_section_ = false;
};

} // namespace icgkit::core
