// Deterministic BeatRecord byte serialization.
//
// The fleet's determinism contract is *byte* identity of per-session
// beat streams across worker counts; this is the canonical byte form
// both the fleet tests and bench_fleet_throughput compare. Serializes
// field by field — never memcpy of the whole struct, whose padding
// bytes are indeterminate.
#pragma once

#include "core/pipeline.h"

#include <cstddef>
#include <vector>

namespace icgkit::core {

/// Appends the canonical byte form of one BeatRecord to `out`: every
/// determinism-relevant field (delineation points, hemodynamics, flaws,
/// RR), field by field, without padding bytes. Two beat streams are "the
/// same" for the fleet's cross-worker-count contract iff their serialized
/// bytes are equal. Diagnostic-only fields (the per-beat SignalQuality
/// metrics, the optional ensemble delineation) are deliberately excluded
/// — extending the contract to them is a reviewed change to this
/// function, not an accident of struct layout.
inline void serialize_beat(const BeatRecord& rec, std::vector<unsigned char>& out) {
  const auto put = [&out](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    out.insert(out.end(), b, b + n);
  };
  put(&rec.points.r, sizeof rec.points.r);
  put(&rec.points.b, sizeof rec.points.b);
  put(&rec.points.c, sizeof rec.points.c);
  put(&rec.points.x, sizeof rec.points.x);
  put(&rec.points.b0, sizeof rec.points.b0);
  put(&rec.points.b_method, sizeof rec.points.b_method);
  put(&rec.points.c_amplitude, sizeof rec.points.c_amplitude);
  put(&rec.points.valid, sizeof rec.points.valid);
  put(&rec.hemo, sizeof rec.hemo);  // all doubles, no padding
  put(&rec.flaws, sizeof rec.flaws);
  put(&rec.rr_s, sizeof rec.rr_s);
}

} // namespace icgkit::core
