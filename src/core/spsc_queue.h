// Bounded lock-free single-producer/single-consumer FIFO.
//
// The fleet's only cross-thread channel: the ingest thread pushes work
// items toward each worker, and each worker pushes completed beats back.
// One producer thread and one consumer thread per queue is a hard
// contract — it is what makes the implementation two relaxed indices
// with acquire/release pairing and no CAS loops. Capacity is fixed at
// construction; a full queue is the backpressure signal (try_push
// returns false, the producer decides whether to spin, drain, or drop).
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace icgkit::core {

/// Bounded wait-free SPSC ring: exactly one producer thread may call
/// try_push and exactly one consumer thread may call try_pop (see the
/// header comment for why that contract is what keeps this CAS-free).
template <typename T>
class SpscQueue {
 public:
  /// Fixed capacity (one slot is sacrificed internally to distinguish
  /// full from empty).
  explicit SpscQueue(std::size_t capacity) : buf_(capacity + 1) {
    if (capacity == 0) throw std::invalid_argument("SpscQueue: capacity must be >= 1");
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Maximum number of elements the queue can hold.
  [[nodiscard]] std::size_t capacity() const { return buf_.size() - 1; }

  /// Producer side. Returns false when the queue is full (backpressure).
  bool try_push(const T& v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t next = advance(t);
    if (next == head_.load(std::memory_order_acquire)) return false;
    buf_[t] = v;
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the queue is empty.
  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    out = buf_[h];
    head_.store(advance(h), std::memory_order_release);
    return true;
  }

  /// Snapshot of the current depth; exact only on the calling side of
  /// the producer/consumer pair, a lower/upper bound on the other.
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return t >= h ? t - h : buf_.size() - (h - t);
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }

 private:
  [[nodiscard]] std::size_t advance(std::size_t i) const {
    return i + 1 == buf_.size() ? 0 : i + 1;
  }

  std::vector<T> buf_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer index
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer index
};

} // namespace icgkit::core
