// ICG characteristic-point detection (Section IV-C of the paper), after
// Carvalho et al., "Robust Characteristic Points for ICG: Definition and
// Comparative Analysis", with the paper's two modifications.
//
// Operating on the ICG between two consecutive ECG R peaks:
//
//  C point -- the maximum of the ICG within the beat (peak aortic flow).
//
//  B point (aortic valve opening):
//    1. Estimate B0: fit a least-squares line through the ICG samples on
//       the rising limb between 40 % and 80 % of the C amplitude; B0 is
//       where that line crosses the time axis (amplitude zero).
//    2. If the second derivative of the ICG left of C shows the
//       (+,-,+,-) sign pattern, B is the first minimum of the third
//       derivative to the left of B0.
//    3. Otherwise B is the first zero crossing of the first derivative
//       (i.e. the local minimum of the ICG) to the left of B0.
//
//  X point (aortic valve closure):
//    Paper rule -- X0 is the lowest negative ICG minimum to the right of
//    C; X is the local minimum of the third derivative to the left of X0.
//    Carvalho rule (kept as a comparison baseline; the paper argues the
//    T-wave end is unreliable) -- X0 is the lowest negative ICG minimum
//    inside [RT, 1.75 RT] after the R peak, where RT is the R-to-T
//    interval measured on the ECG; the refinement is the same.
#pragma once

#include "dsp/types.h"

#include <cstddef>
#include <optional>
#include <vector>

namespace icgkit::core {

/// Which initial X-point estimate to use (see header comment).
enum class XPointRule {
  PaperGlobalMin,   ///< the paper's modification (no T-wave dependence)
  CarvalhoRtWindow, ///< the original RT-window rule
};

/// Which B-point refinement fired.
enum class BPointMethod {
  SignPattern,   ///< (+,-,+,-) found: third-derivative minimum rule
  ZeroCrossing,  ///< fallback: first derivative zero crossing
};

struct DelineationConfig {
  double c_search_min_s = 0.06; ///< C search window start, after R
  double c_search_max_s = 0.45; ///< and end
  double b_line_low_frac = 0.40;
  double b_line_high_frac = 0.80;
  double b_search_back_s = 0.25;  ///< how far left of C the B search may go
  double b_min_pep_s = 0.04;      ///< B may not precede R + this (physiological floor)
  double x_search_max_s = 0.45;   ///< X search window after C
  double x_refine_max_s = 0.040;  ///< how far left of X0 the d3 refinement may move X
  double d2_tolerance_frac = 0.02;///< dead zone for d2 sign, fraction of max |d2|
  XPointRule x_rule = XPointRule::PaperGlobalMin;
  /// Per-beat linear detrend anchored on the diastolic samples adjacent
  /// to the two R peaks. Removes the respiratory baseline (0.04-2 Hz,
  /// Section II) that the 20 Hz low-pass cannot touch; without it the
  /// amplitude-referenced rules (B0 axis crossing, X0 negativity) break
  /// whenever respiration shifts a beat away from zero.
  bool detrend = true;
};

/// One delineated beat; indices are absolute sample positions in the
/// signal passed to `delineate`.
struct BeatDelineation {
  std::size_t r = 0;
  std::size_t b = 0;
  std::size_t c = 0;
  std::size_t x = 0;
  std::size_t b0 = 0;          ///< initial B estimate (line-fit intersection)
  BPointMethod b_method = BPointMethod::ZeroCrossing;
  double c_amplitude = 0.0;    ///< ICG value at C, Ohm/s (the (dZ/dt)max)
  bool valid = false;
};

/// Reusable working buffers for delineate(). A caller that keeps one of
/// these across beats (the streaming pipeline does) pays zero heap
/// allocation per beat once the buffer capacities have warmed up.
struct DelineationScratch {
  dsp::Signal work;         ///< detrended beat samples
  dsp::Signal anchor;       ///< diastolic anchor samples (median is destructive)
  dsp::Signal ts, vs;       ///< rising-limb line-fit points
  dsp::Signal seg;          ///< derivative slice
  dsp::Signal d1, d2, d3;   ///< beat derivatives
  dsp::Signal d3_tmp;       ///< intermediate for the third derivative
  std::vector<int> sign_runs;

  /// Pre-sizes every buffer for beats up to `beat_samples` long, so
  /// delineating any such beat later allocates nothing (every buffer's
  /// length is bounded by the beat length).
  void reserve(std::size_t beat_samples);
};

class IcgDelineator {
 public:
  explicit IcgDelineator(dsp::SampleRate fs, const DelineationConfig& cfg = {});

  /// Delineates the beat whose R peak is at `r_idx`, bounded by the next
  /// R at `next_r_idx`. `icg` is the full filtered ICG trace. `rt_s` is
  /// the R-to-T-peak interval for the Carvalho X rule (ignored by the
  /// paper rule; the rule falls back to the paper rule when absent).
  [[nodiscard]] BeatDelineation delineate(dsp::SignalView icg, std::size_t r_idx,
                                          std::size_t next_r_idx,
                                          std::optional<double> rt_s = std::nullopt) const;

  /// Allocation-free form: identical result, but all intermediates live
  /// in the caller-owned scratch whose capacity is reused across beats.
  [[nodiscard]] BeatDelineation delineate(dsp::SignalView icg, std::size_t r_idx,
                                          std::size_t next_r_idx, DelineationScratch& scratch,
                                          std::optional<double> rt_s = std::nullopt) const;

  [[nodiscard]] const DelineationConfig& config() const { return cfg_; }

 private:
  dsp::SampleRate fs_;
  DelineationConfig cfg_;
};

} // namespace icgkit::core
