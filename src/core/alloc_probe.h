// Allocation-counting test hook.
//
// The fleet hot path promises zero heap allocation per push once a
// session's buffers have warmed up. The library never bumps this counter
// itself: a test binary that wants to verify the promise replaces the
// global operator new/delete with versions that increment
// allocation_counter(), then reads the delta around the code under test
// with an AllocationProbe (see tests/core/fleet_alloc_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>

namespace icgkit::core {

/// Process-wide allocation counter for test instrumentation.
std::atomic<std::uint64_t>& allocation_counter();

/// Reads the counter at construction; delta() is the number of counted
/// allocations since.
class AllocationProbe {
 public:
  AllocationProbe() : start_(allocation_counter().load(std::memory_order_relaxed)) {}

  [[nodiscard]] std::uint64_t delta() const {
    return allocation_counter().load(std::memory_order_relaxed) - start_;
  }

 private:
  std::uint64_t start_;
};

} // namespace icgkit::core
