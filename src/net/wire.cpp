#include "net/wire.h"

#include <cstring>

namespace icgkit::net {

namespace {

std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

} // namespace

// ---------------------------------------------------------------------------
// FrameDecoder
// ---------------------------------------------------------------------------

void FrameDecoder::feed(const std::uint8_t* p, std::size_t n) {
  // Compact before growing: the previous next() results are dead by
  // contract, so the consumed prefix can be dropped and the buffer's
  // steady-state size stays bounded by one partial frame.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), p, p + n);
}

bool FrameDecoder::next(Frame& out) {
  if (!header_done_) {
    if (buf_.size() - pos_ < 8) return false;
    if (le32(buf_.data() + pos_) != kWireMagic)
      throw WireError("bad magic (not an icgkit wire stream)");
    const std::uint32_t version = le32(buf_.data() + pos_ + 4);
    if (version != kWireVersion)
      throw WireError("unsupported wire version " + std::to_string(version) +
                      " (this side speaks " + std::to_string(kWireVersion) + ")");
    pos_ += 8;
    header_done_ = true;
  }
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 8) return false;
  const std::uint8_t* head = buf_.data() + pos_;
  const std::uint32_t len = le32(head + 4);
  // Refuse the length before waiting for it: a hostile 4 GiB prefix
  // must not make the decoder buffer toward it.
  if (len > max_frame_)
    throw WireError("frame length " + std::to_string(len) + " exceeds bound " +
                    std::to_string(max_frame_));
  if (avail < 8 + static_cast<std::size_t>(len) + 4) return false;
  const std::uint8_t* payload = head + 8;
  const std::uint32_t stored = le32(payload + len);
  const std::uint32_t computed = core::checkpoint_crc32(payload, len);
  if (stored != computed) throw WireError("record CRC mismatch");
  std::memcpy(out.tag, head, 4);
  out.tag[4] = '\0';
  out.payload = {payload, len};
  pos_ += 8 + static_cast<std::size_t>(len) + 4;
  return true;
}

// ---------------------------------------------------------------------------
// PayloadReader
// ---------------------------------------------------------------------------

std::uint8_t PayloadReader::u8() { return bytes(1)[0]; }

std::uint32_t PayloadReader::u32() {
  const auto b = bytes(4);
  return le32(b.data());
}

std::uint64_t PayloadReader::u64() {
  const auto b = bytes(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
  return v;
}

double PayloadReader::f64() { return std::bit_cast<double>(u64()); }

void PayloadReader::f64_array(double* out, std::size_t n) {
  if (n == 0) return;
  const auto b = bytes(n * sizeof(double));
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, b.data(), n * sizeof(double));
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t v = 0;
      for (int k = 7; k >= 0; --k)
        v = (v << 8) | b[i * 8 + static_cast<std::size_t>(k)];
      out[i] = std::bit_cast<double>(v);
    }
  }
}

std::span<const std::uint8_t> PayloadReader::bytes(std::size_t n) {
  if (p_.size() - pos_ < n) throw WireError("payload truncated");
  const std::span<const std::uint8_t> v = p_.subspan(pos_, n);
  pos_ += n;
  return v;
}

void PayloadReader::expect_end() const {
  if (pos_ != p_.size())
    throw WireError("payload has " + std::to_string(p_.size() - pos_) +
                    " trailing bytes");
}

// ---------------------------------------------------------------------------
// Stream header / RecordBuilder
// ---------------------------------------------------------------------------

void write_stream_header(std::vector<std::uint8_t>& out) {
  for (const std::uint32_t v : {kWireMagic, kWireVersion})
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

core::StateWriter& RecordBuilder::begin(const char (&tag)[5]) {
  writer_.emplace(core::StateWriter::continuation(std::move(scratch_)));
  writer_->begin_section(tag);
  return *writer_;
}

void RecordBuilder::finish(std::vector<std::uint8_t>& out) {
  if (!writer_.has_value()) throw WireError("RecordBuilder::finish without begin");
  writer_->end_section();
  scratch_ = writer_->take();
  writer_.reset();
  out.insert(out.end(), scratch_.begin(), scratch_.end());
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

void encode_hello(core::StateWriter& w, const Hello& h) {
  w.u32(h.version);
  w.u32(h.flags);
  w.u32(h.max_chunk);
  w.f64(h.fs_hz);
  w.u32(h.workers);
  w.u32(h.max_inflight);
}

Hello decode_hello(PayloadReader& r) {
  Hello h;
  h.version = r.u32();
  h.flags = r.u32();
  h.max_chunk = r.u32();
  h.fs_hz = r.f64();
  h.workers = r.u32();
  h.max_inflight = r.u32();
  r.expect_end();
  return h;
}

void encode_beat(core::StateWriter& w, const core::BeatRecord& rec) {
  w.u64(rec.points.r);
  w.u64(rec.points.b);
  w.u64(rec.points.c);
  w.u64(rec.points.x);
  w.u64(rec.points.b0);
  w.u32(static_cast<std::uint32_t>(rec.points.b_method));
  w.f64(rec.points.c_amplitude);
  w.boolean(rec.points.valid);
  w.f64(rec.hemo.pep_s);
  w.f64(rec.hemo.lvet_s);
  w.f64(rec.hemo.hr_bpm);
  w.f64(rec.hemo.dzdt_max);
  w.f64(rec.hemo.sv_kubicek_ml);
  w.f64(rec.hemo.sv_sramek_ml);
  w.f64(rec.hemo.co_kubicek_l_min);
  w.f64(rec.hemo.tfc_per_kohm);
  w.u32(static_cast<std::uint32_t>(rec.flaws));
  w.f64(rec.rr_s);
}

core::BeatRecord decode_beat(PayloadReader& r) {
  core::BeatRecord rec;
  rec.points.r = static_cast<std::size_t>(r.u64());
  rec.points.b = static_cast<std::size_t>(r.u64());
  rec.points.c = static_cast<std::size_t>(r.u64());
  rec.points.x = static_cast<std::size_t>(r.u64());
  rec.points.b0 = static_cast<std::size_t>(r.u64());
  const std::uint32_t method = r.u32();
  if (method > 1) throw WireError("BEAT b_method out of range");
  rec.points.b_method = static_cast<core::BPointMethod>(method);
  rec.points.c_amplitude = r.f64();
  const std::uint8_t valid = r.u8();
  if (valid > 1) throw WireError("BEAT valid byte is neither 0 nor 1");
  rec.points.valid = valid == 1;
  rec.hemo.pep_s = r.f64();
  rec.hemo.lvet_s = r.f64();
  rec.hemo.hr_bpm = r.f64();
  rec.hemo.dzdt_max = r.f64();
  rec.hemo.sv_kubicek_ml = r.f64();
  rec.hemo.sv_sramek_ml = r.f64();
  rec.hemo.co_kubicek_l_min = r.f64();
  rec.hemo.tfc_per_kohm = r.f64();
  rec.flaws = static_cast<core::BeatFlaw>(r.u32());
  rec.rr_s = r.f64();
  return rec;
}

void encode_quality(core::StateWriter& w, const core::QualitySummary& q) {
  w.u64(q.beats);
  w.u64(q.usable);
  for (std::size_t i = 0; i < core::kBeatFlawCount; ++i) w.u64(q.flaw_counts[i]);
  w.u64(q.ecg_dropouts);
  w.u64(q.z_dropouts);
  w.u64(q.detector_resets);
  w.u64(q.ensemble_folds_skipped);
  w.u64(q.snr_beats);
  w.f64(q.sum_snr_db);
  w.f64(q.min_snr_db);
}

core::QualitySummary decode_quality(PayloadReader& r) {
  core::QualitySummary q;
  q.beats = r.u64();
  q.usable = r.u64();
  for (std::size_t i = 0; i < core::kBeatFlawCount; ++i) q.flaw_counts[i] = r.u64();
  q.ecg_dropouts = r.u64();
  q.z_dropouts = r.u64();
  q.detector_resets = r.u64();
  q.ensemble_folds_skipped = r.u64();
  q.snr_beats = r.u64();
  q.sum_snr_db = r.f64();
  q.min_snr_db = r.f64();
  return q;
}

void encode_stats(core::StateWriter& w, const ServerStats& s) {
  w.u64(s.sessions_open);
  w.u64(s.sessions_closed);
  w.u64(s.migrations);
  w.u64(s.shed_chunks);
  w.u64(s.total_samples);
  w.u64(s.total_beats);
}

ServerStats decode_stats(PayloadReader& r) {
  ServerStats s;
  s.sessions_open = r.u64();
  s.sessions_closed = r.u64();
  s.migrations = r.u64();
  s.shed_chunks = r.u64();
  s.total_samples = r.u64();
  s.total_beats = r.u64();
  r.expect_end();
  return s;
}

void encode_error(core::StateWriter& w, WireErrorCode code, std::uint32_t stream,
                  const std::string& message) {
  w.u32(static_cast<std::uint32_t>(code));
  w.u32(stream);
  w.u32(static_cast<std::uint32_t>(message.size()));
  w.bytes(reinterpret_cast<const std::uint8_t*>(message.data()), message.size());
}

WireErrorRecord decode_error(PayloadReader& r) {
  WireErrorRecord e;
  e.code = static_cast<WireErrorCode>(r.u32());
  e.stream = r.u32();
  const std::uint32_t len = r.u32();
  if (len > r.remaining()) throw WireError("ERRR message truncated");
  const auto b = r.bytes(len);
  e.message.assign(reinterpret_cast<const char*>(b.data()), b.size());
  r.expect_end();
  return e;
}

} // namespace icgkit::net
