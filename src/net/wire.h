// Binary wire protocol for the network fleet front-end.
//
// The stream format deliberately reuses the Checkpoint section framing
// that PR 5/PR 9 proved out against hostile input: after an 8-byte
// stream header
//
//   [magic u32 "ICGW"] [wire version u32]
//
// each direction carries a sequence of independently framed,
// integrity-checked records in exactly the StateWriter section shape:
//
//   [tag 4 bytes] [payload length u32] [payload] [CRC-32 of payload u32]
//
// All multi-byte integers are little-endian regardless of host order;
// doubles travel as IEEE-754 u64 bit patterns — the same portability
// contract as the checkpoint format. Version negotiation mirrors
// `icg_abi_version`: both the stream header and the HELO record carry
// kWireVersion, and a peer speaking any other version is refused with
// an ERRR record and a connection close, never guessed at.
//
// Record vocabulary (direction, payload):
//
//   HELO  c<->s  version/capability exchange (first record both ways)
//   OPEN  c->s   open a session stream        (stream_id, flags)
//   OPAK  s->c   open acknowledgement         (stream_id, status, worker)
//   CHNK  c->s   one synchronized chunk       (stream_id, n, ecg[n], z[n])
//   CACK  s->c   cumulative chunks processed  (stream_id, count) [opt-in]
//   CLSE  c->s   finish the stream (tail beats + QUAL follow)
//   BEAT  s->c   one completed beat           (stream_id, beat fields)
//   QUAL  s->c   terminal quality summary     (stream_id, summary fields)
//   SHED  s->c   explicit load-shed notice    (stream_id, reason, total)
//   RECS  c->s   start flight-recording the live stream
//   RACK  s->c   recording started/refused    (stream_id, status)
//   RECX  c->s   stop recording, return the file
//   RECD  s->c   the .icgr flight record bytes(stream_id, nbytes, bytes)
//   STAT  c->s   server statistics request
//   STAR  s->c   server statistics reply
//   ERRR  s->c   protocol error (code, stream_id or kNoStream, message);
//                connection-level errors are followed by a close
//   BYE_  c->s   clean connection shutdown
//
// Robustness rules (enforced by FrameDecoder, mirrored from
// StateReader): magic/version must match before any record is decoded;
// a record's tag, length and CRC are validated before any payload byte
// is interpreted; a length prefix larger than the configured frame
// bound is refused outright (a 4 GiB allocation is not a parse); every
// payload read is bounds-checked and trailing payload bytes are an
// error. All violations raise WireError — never UB — and the server
// answers them with ERRR + close. A connection that dies mid-frame
// (truncation) simply never completes the frame; the accumulated bytes
// are dropped with the connection.
#pragma once

#include "core/checkpoint.h"
#include "core/pipeline.h"

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace icgkit::net {

/// Any structural violation of the wire stream: bad magic/version,
/// oversized or truncated frame, CRC mismatch, malformed payload.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error("wire: " + what) {}
};

/// "ICGW" read as a little-endian u32.
inline constexpr std::uint32_t kWireMagic = 0x57474349u;
/// Bump on any incompatible protocol change; peers refuse other versions.
inline constexpr std::uint32_t kWireVersion = 1;

// Record tags, in StateWriter 4-character form.
inline constexpr char kTagHello[5] = "HELO";
inline constexpr char kTagOpen[5] = "OPEN";
inline constexpr char kTagOpenAck[5] = "OPAK";
inline constexpr char kTagChunk[5] = "CHNK";
inline constexpr char kTagChunkAck[5] = "CACK";
inline constexpr char kTagClose[5] = "CLSE";
inline constexpr char kTagBeat[5] = "BEAT";
inline constexpr char kTagQuality[5] = "QUAL";
inline constexpr char kTagShed[5] = "SHED";
inline constexpr char kTagRecordStart[5] = "RECS";
inline constexpr char kTagRecordAck[5] = "RACK";
inline constexpr char kTagRecordStop[5] = "RECX";
inline constexpr char kTagRecordData[5] = "RECD";
inline constexpr char kTagStatRequest[5] = "STAT";
inline constexpr char kTagStatReply[5] = "STAR";
inline constexpr char kTagError[5] = "ERRR";
inline constexpr char kTagBye[5] = "BYE_";

/// ERRR stream_id for connection-level errors.
inline constexpr std::uint32_t kNoStream = 0xFFFFFFFFu;

/// ERRR codes (u32 on the wire; append-only like icg_status).
enum class WireErrorCode : std::uint32_t {
  None = 0,
  VersionMismatch = 1,  ///< peer's stream header / HELO version differs
  BadFrame = 2,         ///< CRC mismatch, oversized length, malformed payload
  UnknownRecord = 3,    ///< unrecognized tag (a version-1 peer never sends one)
  UnknownStream = 4,    ///< record for a stream_id that was never opened
  DuplicateStream = 5,  ///< OPEN with a stream_id already in use
  Protocol = 6,         ///< record out of order (e.g. CHNK before HELO)
  TooManySessions = 7,  ///< server at max_sessions
  SlowConsumer = 8,     ///< receiver's outbound buffer bound exceeded
};

/// SHED reasons (u32 on the wire).
enum class ShedReason : std::uint32_t {
  TenantQueueFull = 1,  ///< per-stream pending bound hit while backpressured
};

/// HELO payload, symmetric (fields a side has no say over are zero).
struct Hello {
  std::uint32_t version = kWireVersion;
  std::uint32_t flags = 0;          ///< client: bit0 = want per-chunk CACKs
  std::uint32_t max_chunk = 0;      ///< server: fleet max chunk (samples)
  double fs_hz = 0.0;               ///< server: fleet sample rate
  std::uint32_t workers = 0;        ///< server: worker pool size
  std::uint32_t max_inflight = 0;   ///< server: per-stream pending-chunk bound
};
inline constexpr std::uint32_t kHelloWantAcks = 1u << 0;

/// STAR payload: the server's live counters.
struct ServerStats {
  std::uint64_t sessions_open = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t shed_chunks = 0;
  std::uint64_t total_samples = 0;
  std::uint64_t total_beats = 0;
};

/// One decoded record: tag plus a validated payload view. The view
/// aliases the decoder's buffer and stays valid only until the next
/// feed()/next() call.
struct Frame {
  char tag[5] = {};
  std::span<const std::uint8_t> payload;
};

/// Incremental frame decoder for one direction of one connection. Feed
/// it raw socket bytes; next() yields complete validated records. The
/// stream header (magic + version) is consumed and checked before the
/// first record. Violations throw WireError; an incomplete suffix is
/// simply "not yet" (next() returns false).
class FrameDecoder {
 public:
  /// `max_frame_bytes` bounds the accepted payload length — the defense
  /// against hostile length prefixes. Size it from the negotiated
  /// max_chunk (a CHNK is the largest legitimate record).
  explicit FrameDecoder(std::size_t max_frame_bytes) : max_frame_(max_frame_bytes) {}

  /// Appends raw bytes from the socket.
  void feed(const std::uint8_t* p, std::size_t n);

  /// Decodes the next complete record, if the buffer holds one. The
  /// returned payload view is valid until the next feed()/next().
  bool next(Frame& out);

  /// True once the stream header was seen and validated.
  [[nodiscard]] bool header_done() const { return header_done_; }

  /// Bytes buffered but not yet consumed (tests and flow-control).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::size_t max_frame_;
  bool header_done_ = false;
};

/// Bounds-checked little-endian reads over one record's payload.
/// Mirrors StateReader's primitives but over a raw section payload
/// (StateReader requires a whole blob with header; wire records arrive
/// one at a time). Every violation throws WireError.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> payload) : p_(payload) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  void f64_array(double* out, std::size_t n);
  std::span<const std::uint8_t> bytes(std::size_t n);
  [[nodiscard]] std::size_t remaining() const { return p_.size() - pos_; }
  /// A payload with trailing bytes is malformed, exactly as a
  /// checkpoint section a loader does not fully consume.
  void expect_end() const;

 private:
  std::span<const std::uint8_t> p_;
  std::size_t pos_ = 0;
};

/// Appends the 8-byte stream header to `out` (each side sends it once,
/// immediately after connect/accept).
void write_stream_header(std::vector<std::uint8_t>& out);

/// Builds framed records into a caller-owned byte stream, recycling one
/// scratch buffer across records (the per-connection encode path stays
/// allocation-free once warm). Usage:
///   core::StateWriter& w = rb.begin(kTagBeat);
///   w.u32(stream); encode_beat(w, rec);
///   rb.finish(outbuf);
class RecordBuilder {
 public:
  core::StateWriter& begin(const char (&tag)[5]);
  /// Closes the record and appends its framed bytes to `out`.
  void finish(std::vector<std::uint8_t>& out);

 private:
  std::vector<std::uint8_t> scratch_;
  std::optional<core::StateWriter> writer_;
};

// --- payload codecs -------------------------------------------------------

void encode_hello(core::StateWriter& w, const Hello& h);
Hello decode_hello(PayloadReader& r);

/// BEAT fields are exactly the determinism byte contract of
/// core::serialize_beat (delineation points, hemodynamics, flaws, RR) —
/// the diagnostic-only SignalQuality/ensemble fields stay host-side.
/// A decoded beat therefore re-serializes byte-identically, which is
/// what the loopback soak's zero-divergence check relies on.
void encode_beat(core::StateWriter& w, const core::BeatRecord& rec);
core::BeatRecord decode_beat(PayloadReader& r);

void encode_quality(core::StateWriter& w, const core::QualitySummary& q);
core::QualitySummary decode_quality(PayloadReader& r);

void encode_stats(core::StateWriter& w, const ServerStats& s);
ServerStats decode_stats(PayloadReader& r);

/// ERRR payload: code, stream id (kNoStream when connection-level),
/// u32-length-prefixed UTF-8 message.
void encode_error(core::StateWriter& w, WireErrorCode code, std::uint32_t stream,
                  const std::string& message);
struct WireErrorRecord {
  WireErrorCode code = WireErrorCode::None;
  std::uint32_t stream = kNoStream;
  std::string message;
};
WireErrorRecord decode_error(PayloadReader& r);

} // namespace icgkit::net
