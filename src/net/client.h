// Blocking loopback/LAN client for the fleet wire protocol.
//
// The deliberately simple counterpart to net::FleetServer: one blocking
// TCP socket, synchronous verb writes, and a poll-based event drain
// that decodes inbound records into a tagged ClientEvent union. It is
// what the tests, the bench soak, and examples/net_client speak — and
// doubles as the reference implementation of the client side of the
// protocol for out-of-tree consumers.
//
// Threading: a FleetClient is single-threaded (use one per thread; the
// bench opens many). Verbs never read; poll_events() never writes —
// the two halves can therefore be interleaved freely on that one
// thread without reentrancy surprises.
#pragma once

#include "net/wire.h"

#include <cstdint>
#include <span>
#include <vector>

namespace icgkit::net {

/// One decoded server->client record. `type` selects which fields are
/// meaningful; the rest stay default-initialized.
struct ClientEvent {
  enum class Type {
    OpenAck,     ///< stream, status (0 ok / WireErrorCode), worker
    Beat,        ///< stream, beat
    ChunkAck,    ///< stream, count (cumulative chunks processed)
    Quality,     ///< stream, quality — terminal: the stream is closed
    Shed,        ///< stream, shed_reason, count (running shed total)
    RecordAck,   ///< stream, status (0 = recording started)
    RecordData,  ///< stream, blob (the .icgr flight record bytes)
    Stats,       ///< stats
    Error,       ///< error (stream-level unless error.stream == kNoStream)
  };
  Type type = Type::Error;
  std::uint32_t stream = 0;
  std::uint32_t status = 0;
  std::uint32_t worker = 0;
  std::uint32_t shed_reason = 0;
  std::uint64_t count = 0;
  core::BeatRecord beat{};
  core::QualitySummary quality{};
  ServerStats stats{};
  WireErrorRecord error{};
  std::vector<std::uint8_t> blob;
};

/// Synchronous wire-protocol client. Lifecycle: construct ->
/// connect_loopback() -> verbs + poll_events() -> bye()/destruction.
class FleetClient {
 public:
  /// `max_frame_bytes` bounds inbound records; the default is sized for
  /// RECD frames carrying a whole flight record.
  explicit FleetClient(std::size_t max_frame_bytes = 32u << 20);
  ~FleetClient();

  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  /// Connects to 127.0.0.1:port, sends the stream header + client HELO
  /// (`want_acks` requests per-chunk CACK records), and blocks until
  /// the server's HELO arrives. Returns false if the TCP connect fails;
  /// throws WireError if the server speaks garbage or refuses the
  /// version with an ERRR.
  [[nodiscard]] bool connect_loopback(std::uint16_t port, bool want_acks = false);

  /// The server's HELO (valid after connect_loopback() returns true):
  /// negotiated max_chunk, fs_hz, worker count, per-stream inflight bound.
  [[nodiscard]] const Hello& server_hello() const { return server_hello_; }

  /// True while the socket is up and the server has not closed on us.
  [[nodiscard]] bool connected() const { return fd_ >= 0 && !eof_; }

  // --- verbs (synchronous, blocking writes) -------------------------------

  /// Opens stream `stream_id` (client-chosen, unique per connection).
  /// The server answers with an OpenAck event carrying the worker.
  void open_stream(std::uint32_t stream_id);
  /// Sends one synchronized chunk; ecg and z must be the same length,
  /// at most server_hello().max_chunk samples.
  void send_chunk(std::uint32_t stream_id, std::span<const double> ecg,
                  std::span<const double> z);
  /// Requests finish; the tail Beat events and the terminal Quality
  /// event follow.
  void close_stream(std::uint32_t stream_id);
  /// Starts flight-recording the live stream (RecordAck follows).
  /// `checkpoint_interval` = 0 keeps the server default cadence.
  void record_start(std::uint32_t stream_id, std::uint64_t checkpoint_interval = 0);
  /// Stops recording; the RecordData event carries the .icgr bytes.
  void record_stop(std::uint32_t stream_id);
  /// Requests a Stats event.
  void request_stats();
  /// Clean shutdown: the server finishes remaining streams, flushes,
  /// and closes the connection.
  void bye();

  // --- inbound ------------------------------------------------------------

  /// Appends decoded events to `out`. Drains whatever is already
  /// buffered; if that yields nothing, waits up to `timeout_ms` for
  /// socket data (0 = pure poll, <0 = wait indefinitely). Returns the
  /// number of events appended — 0 on timeout or orderly server close
  /// (check connected()). Throws WireError on a malformed stream.
  std::size_t poll_events(std::vector<ClientEvent>& out, int timeout_ms);

  /// Convenience: polls until an event of `type` arrives (appending
  /// everything received to `out`) or the connection drops. Returns the
  /// index of the matching event in `out`, or SIZE_MAX.
  std::size_t wait_for(ClientEvent::Type type, std::vector<ClientEvent>& out);

  void close();

 private:
  void send_all(const std::vector<std::uint8_t>& bytes);
  bool drain_decoder(std::vector<ClientEvent>& out);
  static ClientEvent decode_event(const Frame& f);

  int fd_ = -1;
  bool eof_ = false;
  FrameDecoder decoder_;
  RecordBuilder rb_;
  std::vector<std::uint8_t> sendbuf_;
  Hello server_hello_{};
};

} // namespace icgkit::net
