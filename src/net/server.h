// Network fleet front-end: the event-loop server that puts the
// SessionManager behind the binary wire protocol (net/wire.h).
//
// Architecture (one process):
//
//   accept/epoll IO thread  ==  the fleet's pilot thread
//        |  poll(2) over listen fd + per-connection fds, non-blocking
//        |  decode frames -> SessionHandle verbs (try_push/try_finish)
//        |  fleet poll()  -> encode BEAT/QUAL/CACK into per-conn outbufs
//        v
//   SessionManager worker pool (unchanged SPSC queues, SIMD batches)
//
// Running the socket loop *on* the pilot thread is what satisfies the
// SessionManager's strict one-pilot contract with zero new locks: every
// open/push/finish/migrate happens between two poll(2) calls, and the
// existing worker handoffs keep their SPSC roles.
//
// Backpressure is bounded and explicit at every hop:
//   - fleet-side: try_push fails when the session's slab window or the
//     worker queue is full; the chunk parks in the stream's bounded
//     pending queue and is retried each loop tick;
//   - tenant-side: a stream whose pending queue is full sheds the chunk
//     and tells the client with a SHED record (reason, running total)
//     instead of blocking the loop or growing memory;
//   - client-side: a connection that stops reading accumulates outbuf
//     bytes until max_outbuf_bytes, then is disconnected (ERRR
//     SlowConsumer when it can be delivered) — a slow consumer cannot
//     wedge the fleet.
//
// Placement is load-aware: OPEN homes the session via
// SessionManager::open() (least-loaded worker), and every
// rebalance_period_chunks accepted chunks the server compares live
// per-worker queue depths + resident session counts and migrate()s one
// session from the most to the least loaded worker when the gap
// exceeds rebalance_min_gap — the load source least_loaded_worker()/
// migrate() were waiting for since PR 5.
//
// src/core stays socket-free: this layer is the only place in the tree
// that includes OS networking headers, and it is deliberately excluded
// from the embedded-profile source list.
#pragma once

#include "core/fleet.h"
#include "net/wire.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

namespace icgkit::net {

/// bind()-time verdict on a ServerConfig — the init-then-validate shape
/// of icg_config_init/icg_session_create: defaults are valid, every
/// field is range-checked before any resource is acquired, and the
/// reject reason is a status code, not an exception.
enum class ServerStatus : std::int32_t {
  Ok = 0,
  BadMaxConnections = -1,   ///< zero
  BadMaxSessions = -2,      ///< zero
  BadPendingBound = -3,     ///< zero tenant_pending_chunks
  BadRebalanceGap = -4,     ///< rebalancing on with a zero gap
  BadOutbufBound = -5,      ///< too small to carry one max frame
  BadFrameBound = -6,       ///< max_frame_bytes cannot fit one CHNK
  BadSampleRate = -7,       ///< fs_hz not in (0, 100000]
  BadFleetConfig = -8,      ///< nested FleetConfig fails its own checks
  AlreadyBound = -9,        ///< bind() called twice
  BindFailed = -10,         ///< socket/bind/listen refused by the OS
};

[[nodiscard]] const char* server_status_name(ServerStatus s);

/// Every server/fleet knob in one validated place. The nested
/// FleetConfig is the same struct the in-process fleet takes; the
/// server-only fields bound the network edge.
struct ServerConfig {
  /// TCP port; 0 asks the OS for an ephemeral one (readable via
  /// FleetServer::port() after bind — how the tests/bench run loopback).
  std::uint16_t port = 0;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 64;
  /// OPENs beyond this many concurrently live streams get OPAK
  /// status TooManySessions.
  std::size_t max_sessions = 16384;
  /// Per-stream pending-chunk bound (the tenant backpressure budget on
  /// top of the fleet's own slab window). A chunk arriving with the
  /// pending queue full is shed, not buffered.
  std::size_t tenant_pending_chunks = 8;
  /// Rebalance cadence in accepted chunks; 0 disables rebalancing.
  std::size_t rebalance_period_chunks = 4096;
  /// Minimum (busiest - idlest) worker load difference, in work items
  /// plus resident sessions, before a rebalance migrates a session.
  std::size_t rebalance_min_gap = 8;
  /// Slow-consumer disconnect bound on a connection's outbound buffer.
  std::size_t max_outbuf_bytes = 8u << 20;
  /// FrameDecoder bound for inbound records; must fit a max_chunk CHNK.
  std::size_t max_frame_bytes = 1u << 20;
  /// Sample rate every served session runs at (the server HELO
  /// advertises it).
  double fs_hz = 250.0;
  /// Bind 127.0.0.1 only (the loopback soak / test default). Clear it
  /// to serve a LAN.
  bool loopback_only = true;
  /// The fleet below the front-end, unchanged.
  core::FleetConfig fleet{};
};

/// Range-checks a ServerConfig (also run by bind()).
[[nodiscard]] ServerStatus validate_server_config(const ServerConfig& cfg);

/// The loopback/LAN fleet server. Lifecycle: construct -> bind() ->
/// start() -> stop() (or destruction). bind() is the validation gate;
/// start() spawns the IO/pilot thread plus the fleet workers; stop()
/// finishes every live session, drains, and joins.
class FleetServer {
 public:
  explicit FleetServer(const ServerConfig& cfg);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Validates the config and acquires the listen socket. Returns the
  /// reject reason instead of throwing (the icg_config shape).
  [[nodiscard]] ServerStatus bind();

  /// The bound TCP port (after a successful bind()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Spawns the IO/pilot thread and the fleet worker pool. bind() must
  /// have succeeded.
  void start();

  /// Signals the IO thread, finishes every live session, joins
  /// everything. Idempotent; also run by the destructor.
  void stop();

  /// Live counters (readable from any thread while the server runs).
  [[nodiscard]] ServerStats stats() const;

  /// Fleet-level migration counter (stable after stop()).
  [[nodiscard]] std::uint64_t migrations() const;

 private:
  struct PendingChunk {
    std::vector<double> ecg, z;
  };

  /// One open stream: the session façade plus its tenant-side state.
  struct Stream {
    core::SessionHandle handle;
    std::uint32_t stream_id = 0;
    bool want_acks = false;
    bool finish_requested = false;  ///< CLSE seen; try_finish until accepted
    std::deque<PendingChunk> pending;
    std::uint64_t shed_total = 0;
    std::uint64_t last_ack = 0;
  };

  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::vector<std::uint8_t> outbuf;
    std::size_t out_pos = 0;
    bool hello_done = false;
    bool want_acks = false;  ///< client HELO requested per-chunk CACKs
    bool closing = false;  ///< BYE_ seen: close once streams finish + outbuf drains
    bool dead = false;     ///< protocol violation / IO error: reap this tick
    std::unordered_map<std::uint32_t, std::unique_ptr<Stream>> streams;

    explicit Connection(int fd_, std::size_t max_frame)
        : fd(fd_), decoder(max_frame) {}
  };

  void run_loop();
  void accept_pending();
  void read_connection(Connection& c);
  void handle_frame(Connection& c, const Frame& f);
  void handle_open(Connection& c, PayloadReader& r);
  void handle_chunk(Connection& c, PayloadReader& r);
  void pump_pending(Connection& c);
  void pump_fleet_results();
  void maybe_rebalance();
  void flush_writes(Connection& c);
  void send_error(Connection& c, WireErrorCode code, std::uint32_t stream,
                  const std::string& message, bool fatal);
  void emit_beat_records(const std::vector<core::FleetBeat>& beats);
  void emit_acks();
  void reap_dead();
  Stream* find_stream(Connection& c, std::uint32_t stream_id);

  ServerConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool bound_ = false;
  std::atomic<bool> stop_requested_{false};
  bool stopped_ = false;
  std::thread io_thread_;

  std::unique_ptr<core::SessionManager> fleet_;
  std::vector<std::unique_ptr<Connection>> conns_;
  /// session id -> (connection, stream) routing for fleet poll()
  /// results. Entries are erased when the stream's QUAL is emitted or
  /// its connection dies; a routed beat without an entry is dropped
  /// (its consumer is gone).
  struct Route {
    Connection* conn = nullptr;
    Stream* stream = nullptr;
  };
  std::unordered_map<std::uint32_t, Route> routes_;
  std::vector<core::FleetBeat> beat_scratch_;
  std::vector<double> ecg_scratch_, z_scratch_;
  std::vector<std::size_t> depth_scratch_, resident_scratch_;
  RecordBuilder rb_;
  std::size_t chunks_since_rebalance_ = 0;

  // Live counters (IO thread writes, any thread reads).
  std::atomic<std::uint64_t> sessions_open_{0};
  std::atomic<std::uint64_t> sessions_closed_{0};
  std::atomic<std::uint64_t> shed_chunks_{0};
  std::atomic<std::uint64_t> migrations_{0};
};

} // namespace icgkit::net
