#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace icgkit::net {

FleetClient::FleetClient(std::size_t max_frame_bytes) : decoder_(max_frame_bytes) {}

FleetClient::~FleetClient() { close(); }

void FleetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool FleetClient::connect_loopback(std::uint16_t port, bool want_acks) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  eof_ = false;

  sendbuf_.clear();
  write_stream_header(sendbuf_);
  Hello h;
  h.version = kWireVersion;
  if (want_acks) h.flags |= kHelloWantAcks;
  core::StateWriter& w = rb_.begin(kTagHello);
  encode_hello(w, h);
  rb_.finish(sendbuf_);
  send_all(sendbuf_);

  // Block until the server's HELO (or its refusal) arrives.
  std::uint8_t buf[4096];
  Frame f;
  for (;;) {
    while (decoder_.next(f)) {
      if (std::memcmp(f.tag, kTagHello, 4) == 0) {
        PayloadReader r(f.payload);
        server_hello_ = decode_hello(r);
        if (server_hello_.version != kWireVersion)
          throw WireError("server speaks wire version " +
                          std::to_string(server_hello_.version));
        return true;
      }
      if (std::memcmp(f.tag, kTagError, 4) == 0) {
        PayloadReader r(f.payload);
        throw WireError("server refused handshake: " + decode_error(r).message);
      }
      throw WireError(std::string("unexpected record '") + f.tag +
                      "' before server HELO");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    eof_ = true;
    throw WireError("connection closed during handshake");
  }
}

void FleetClient::send_all(const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    eof_ = true;
    throw WireError("send failed (connection lost)");
  }
}

void FleetClient::open_stream(std::uint32_t stream_id) {
  sendbuf_.clear();
  core::StateWriter& w = rb_.begin(kTagOpen);
  w.u32(stream_id);
  rb_.finish(sendbuf_);
  send_all(sendbuf_);
}

void FleetClient::send_chunk(std::uint32_t stream_id, std::span<const double> ecg,
                             std::span<const double> z) {
  if (ecg.size() != z.size())
    throw WireError("CHNK channels must be the same length");
  sendbuf_.clear();
  core::StateWriter& w = rb_.begin(kTagChunk);
  w.u32(stream_id);
  w.u32(static_cast<std::uint32_t>(ecg.size()));
  w.f64_array(ecg.data(), ecg.size());
  w.f64_array(z.data(), z.size());
  rb_.finish(sendbuf_);
  send_all(sendbuf_);
}

void FleetClient::close_stream(std::uint32_t stream_id) {
  sendbuf_.clear();
  core::StateWriter& w = rb_.begin(kTagClose);
  w.u32(stream_id);
  rb_.finish(sendbuf_);
  send_all(sendbuf_);
}

void FleetClient::record_start(std::uint32_t stream_id,
                               std::uint64_t checkpoint_interval) {
  sendbuf_.clear();
  core::StateWriter& w = rb_.begin(kTagRecordStart);
  w.u32(stream_id);
  w.u64(checkpoint_interval);
  rb_.finish(sendbuf_);
  send_all(sendbuf_);
}

void FleetClient::record_stop(std::uint32_t stream_id) {
  sendbuf_.clear();
  core::StateWriter& w = rb_.begin(kTagRecordStop);
  w.u32(stream_id);
  rb_.finish(sendbuf_);
  send_all(sendbuf_);
}

void FleetClient::request_stats() {
  sendbuf_.clear();
  rb_.begin(kTagStatRequest);
  rb_.finish(sendbuf_);
  send_all(sendbuf_);
}

void FleetClient::bye() {
  sendbuf_.clear();
  rb_.begin(kTagBye);
  rb_.finish(sendbuf_);
  send_all(sendbuf_);
}

ClientEvent FleetClient::decode_event(const Frame& f) {
  ClientEvent ev;
  PayloadReader r(f.payload);
  if (std::memcmp(f.tag, kTagBeat, 4) == 0) {
    ev.type = ClientEvent::Type::Beat;
    ev.stream = r.u32();
    ev.beat = decode_beat(r);
    r.expect_end();
  } else if (std::memcmp(f.tag, kTagChunkAck, 4) == 0) {
    ev.type = ClientEvent::Type::ChunkAck;
    ev.stream = r.u32();
    ev.count = r.u64();
    r.expect_end();
  } else if (std::memcmp(f.tag, kTagQuality, 4) == 0) {
    ev.type = ClientEvent::Type::Quality;
    ev.stream = r.u32();
    ev.quality = decode_quality(r);
    r.expect_end();
  } else if (std::memcmp(f.tag, kTagOpenAck, 4) == 0) {
    ev.type = ClientEvent::Type::OpenAck;
    ev.stream = r.u32();
    ev.status = r.u32();
    ev.worker = r.u32();
    r.expect_end();
  } else if (std::memcmp(f.tag, kTagShed, 4) == 0) {
    ev.type = ClientEvent::Type::Shed;
    ev.stream = r.u32();
    ev.shed_reason = r.u32();
    ev.count = r.u64();
    r.expect_end();
  } else if (std::memcmp(f.tag, kTagRecordAck, 4) == 0) {
    ev.type = ClientEvent::Type::RecordAck;
    ev.stream = r.u32();
    ev.status = r.u32();
    r.expect_end();
  } else if (std::memcmp(f.tag, kTagRecordData, 4) == 0) {
    ev.type = ClientEvent::Type::RecordData;
    ev.stream = r.u32();
    const std::uint32_t len = r.u32();
    if (len != r.remaining()) throw WireError("RECD length disagrees with frame");
    const auto b = r.bytes(len);
    ev.blob.assign(b.begin(), b.end());
    r.expect_end();
  } else if (std::memcmp(f.tag, kTagStatReply, 4) == 0) {
    ev.type = ClientEvent::Type::Stats;
    ev.stats = decode_stats(r);
  } else if (std::memcmp(f.tag, kTagError, 4) == 0) {
    ev.type = ClientEvent::Type::Error;
    ev.error = decode_error(r);
    ev.stream = ev.error.stream;
  } else {
    throw WireError(std::string("unknown server record '") + f.tag + "'");
  }
  return ev;
}

bool FleetClient::drain_decoder(std::vector<ClientEvent>& out) {
  bool any = false;
  Frame f;
  while (decoder_.next(f)) {
    out.push_back(decode_event(f));
    any = true;
  }
  return any;
}

std::size_t FleetClient::poll_events(std::vector<ClientEvent>& out, int timeout_ms) {
  const std::size_t before = out.size();
  if (drain_decoder(out)) return out.size() - before;
  if (!connected()) return 0;
  std::uint8_t buf[65536];
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return 0;  // timeout
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      if (drain_decoder(out)) return out.size() - before;
      continue;  // partial frame: keep waiting within the caller's intent
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return 0;
    eof_ = true;  // orderly close or hard error
    return 0;
  }
}

std::size_t FleetClient::wait_for(ClientEvent::Type type,
                                  std::vector<ClientEvent>& out) {
  std::size_t scanned = out.size();
  for (;;) {
    for (; scanned < out.size(); ++scanned)
      if (out[scanned].type == type) return scanned;
    if (!connected()) return static_cast<std::size_t>(-1);
    poll_events(out, 1000);
    if (scanned == out.size() && !connected()) return static_cast<std::size_t>(-1);
  }
}

} // namespace icgkit::net
