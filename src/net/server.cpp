#include "net/server.h"

#include "core/batch.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace icgkit::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// The CHNK payload for n samples: stream id + count + two f64 arrays.
std::size_t chunk_payload_bytes(std::size_t n) { return 8 + 16 * n; }

} // namespace

const char* server_status_name(ServerStatus s) {
  switch (s) {
    case ServerStatus::Ok: return "Ok";
    case ServerStatus::BadMaxConnections: return "BadMaxConnections";
    case ServerStatus::BadMaxSessions: return "BadMaxSessions";
    case ServerStatus::BadPendingBound: return "BadPendingBound";
    case ServerStatus::BadRebalanceGap: return "BadRebalanceGap";
    case ServerStatus::BadOutbufBound: return "BadOutbufBound";
    case ServerStatus::BadFrameBound: return "BadFrameBound";
    case ServerStatus::BadSampleRate: return "BadSampleRate";
    case ServerStatus::BadFleetConfig: return "BadFleetConfig";
    case ServerStatus::AlreadyBound: return "AlreadyBound";
    case ServerStatus::BindFailed: return "BindFailed";
  }
  return "?";
}

ServerStatus validate_server_config(const ServerConfig& cfg) {
  if (cfg.max_connections == 0) return ServerStatus::BadMaxConnections;
  if (cfg.max_sessions == 0) return ServerStatus::BadMaxSessions;
  if (cfg.tenant_pending_chunks == 0) return ServerStatus::BadPendingBound;
  if (cfg.rebalance_period_chunks > 0 && cfg.rebalance_min_gap == 0)
    return ServerStatus::BadRebalanceGap;
  if (!(cfg.fs_hz > 0.0) || cfg.fs_hz > 100000.0) return ServerStatus::BadSampleRate;
  if (cfg.fleet.workers == 0 || cfg.fleet.max_chunk == 0 ||
      cfg.fleet.chunk_slots_per_session == 0 ||
      (cfg.fleet.batch_width > 1 &&
       !core::session_batch_width_supported(cfg.fleet.batch_width)))
    return ServerStatus::BadFleetConfig;
  if (cfg.max_frame_bytes < chunk_payload_bytes(cfg.fleet.max_chunk))
    return ServerStatus::BadFrameBound;
  // The outbuf bound must hold at least one maximal framed record, or a
  // single RECD/QUAL could trip the slow-consumer disconnect by itself.
  if (cfg.max_outbuf_bytes < cfg.max_frame_bytes + 16)
    return ServerStatus::BadOutbufBound;
  return ServerStatus::Ok;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

FleetServer::FleetServer(const ServerConfig& cfg) : cfg_(cfg) {}

FleetServer::~FleetServer() { stop(); }

ServerStatus FleetServer::bind() {
  if (bound_) return ServerStatus::AlreadyBound;
  const ServerStatus verdict = validate_server_config(cfg_);
  if (verdict != ServerStatus::Ok) return verdict;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ServerStatus::BindFailed;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  addr.sin_addr.s_addr = htonl(cfg_.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return ServerStatus::BindFailed;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return ServerStatus::BindFailed;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  bound_ = true;
  return ServerStatus::Ok;
}

void FleetServer::start() {
  if (!bound_) throw std::logic_error("FleetServer: start() before a successful bind()");
  if (fleet_) throw std::logic_error("FleetServer: start() called twice");
  // The fleet is constructed and its workers spawned here, but every
  // pilot-side call after this point happens on the IO thread — the
  // thread creation edge hands the pilot role over cleanly.
  fleet_ = std::make_unique<core::SessionManager>(cfg_.fs_hz, cfg_.fleet);
  fleet_->start();
  stop_requested_.store(false, std::memory_order_release);
  io_thread_ = std::thread([this] { run_loop(); });
}

void FleetServer::stop() {
  if (stopped_) return;
  stop_requested_.store(true, std::memory_order_release);
  if (io_thread_.joinable()) io_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  stopped_ = true;
}

ServerStats FleetServer::stats() const {
  ServerStats s;
  s.sessions_open = sessions_open_.load(std::memory_order_relaxed);
  s.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  s.migrations = migrations_.load(std::memory_order_relaxed);
  s.shed_chunks = shed_chunks_.load(std::memory_order_relaxed);
  if (fleet_) {
    s.total_samples = fleet_->total_samples();
    s.total_beats = fleet_->total_beats();
  }
  return s;
}

std::uint64_t FleetServer::migrations() const {
  return migrations_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Event loop (IO thread == fleet pilot thread)
// ---------------------------------------------------------------------------

void FleetServer::run_loop() {
  std::vector<pollfd> fds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& c : conns_) {
      short events = POLLIN;
      if (c->out_pos < c->outbuf.size()) events |= POLLOUT;
      fds.push_back({c->fd, events, 0});
    }
    // Zero timeout while anything is in flight (pending chunks, queued
    // output, unprocessed fleet work) so results stream back with no
    // imposed latency; 1 ms park otherwise.
    bool busy = fleet_ != nullptr && !fleet_->idle();
    for (const auto& c : conns_) {
      if (c->out_pos < c->outbuf.size() || c->dead || c->closing) busy = true;
      for (const auto& [id, st] : c->streams)
        if (!st->pending.empty() || st->finish_requested) busy = true;
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), busy ? 0 : 1);

    // Snapshot the polled count first: accept_pending() grows conns_,
    // and the fresh connections have no pollfd entry this tick.
    const std::size_t polled = fds.size() - 1;
    if ((fds[0].revents & POLLIN) != 0) accept_pending();
    for (std::size_t i = 0; i < polled; ++i) {
      const short rev = fds[i + 1].revents;
      Connection& c = *conns_[i];
      if ((rev & (POLLERR | POLLNVAL)) != 0) c.dead = true;
      if (!c.dead && (rev & (POLLIN | POLLHUP)) != 0) read_connection(c);
    }
    for (const auto& c : conns_)
      if (!c->dead) pump_pending(*c);
    pump_fleet_results();
    emit_acks();
    maybe_rebalance();
    for (const auto& c : conns_)
      if (!c->dead) flush_writes(*c);
    reap_dead();
  }

  // Shutdown: drop every connection (stream handles finish their
  // sessions from this thread — still the pilot), then run the fleet to
  // completion and discard the tail.
  for (const auto& c : conns_) {
    for (const auto& [id, st] : c->streams) routes_.erase(st->handle.id());
    if (c->fd >= 0) ::close(c->fd);
  }
  conns_.clear();
  routes_.clear();
  beat_scratch_.clear();
  fleet_->run_to_completion(beat_scratch_);
}

void FleetServer::accept_pending() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: nothing (more) queued
    if (conns_.size() >= cfg_.max_connections || !set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    set_nodelay(fd);
    auto conn = std::make_unique<Connection>(fd, cfg_.max_frame_bytes);
    // Greet immediately: stream header + server HELO with the fleet's
    // operating parameters (the client checks the version and sizes its
    // chunks from max_chunk).
    write_stream_header(conn->outbuf);
    Hello h;
    h.version = kWireVersion;
    h.max_chunk = static_cast<std::uint32_t>(cfg_.fleet.max_chunk);
    h.fs_hz = cfg_.fs_hz;
    h.workers = static_cast<std::uint32_t>(cfg_.fleet.workers);
    h.max_inflight = static_cast<std::uint32_t>(cfg_.tenant_pending_chunks);
    core::StateWriter& w = rb_.begin(kTagHello);
    encode_hello(w, h);
    rb_.finish(conn->outbuf);
    conns_.push_back(std::move(conn));
  }
}

void FleetServer::read_connection(Connection& c) {
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
    if (n > 0) {
      c.decoder.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n == 0) {  // orderly shutdown from the peer
      c.dead = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c.dead = true;
    break;
  }
  if (c.dead) return;
  try {
    Frame f;
    while (c.decoder.next(f)) handle_frame(c, f);
  } catch (const WireError& e) {
    // Malformed stream: refuse with a clean error record, then drop the
    // connection. Decoder state is unrecoverable past a frame violation.
    const WireErrorCode code = c.decoder.header_done()
                                   ? WireErrorCode::BadFrame
                                   : WireErrorCode::VersionMismatch;
    send_error(c, code, kNoStream, e.what(), /*fatal=*/true);
  }
}

FleetServer::Stream* FleetServer::find_stream(Connection& c, std::uint32_t stream_id) {
  const auto it = c.streams.find(stream_id);
  return it == c.streams.end() ? nullptr : it->second.get();
}

void FleetServer::handle_frame(Connection& c, const Frame& f) {
  PayloadReader r(f.payload);
  if (!c.hello_done) {
    if (std::memcmp(f.tag, kTagHello, 4) != 0) {
      send_error(c, WireErrorCode::Protocol, kNoStream,
                 "first record must be HELO", /*fatal=*/true);
      return;
    }
    const Hello h = decode_hello(r);
    if (h.version != kWireVersion) {
      send_error(c, WireErrorCode::VersionMismatch, kNoStream,
                 "client speaks wire version " + std::to_string(h.version),
                 /*fatal=*/true);
      return;
    }
    c.hello_done = true;
    c.want_acks = (h.flags & kHelloWantAcks) != 0;
    return;
  }
  if (std::memcmp(f.tag, kTagChunk, 4) == 0) {
    handle_chunk(c, r);
  } else if (std::memcmp(f.tag, kTagOpen, 4) == 0) {
    handle_open(c, r);
  } else if (std::memcmp(f.tag, kTagClose, 4) == 0) {
    const std::uint32_t stream_id = r.u32();
    r.expect_end();
    Stream* st = find_stream(c, stream_id);
    if (st == nullptr) {
      send_error(c, WireErrorCode::UnknownStream, stream_id, "CLSE", false);
      return;
    }
    st->finish_requested = true;  // flushed by pump_pending, in order
  } else if (std::memcmp(f.tag, kTagRecordStart, 4) == 0) {
    const std::uint32_t stream_id = r.u32();
    const std::uint64_t interval = r.u64();
    r.expect_end();
    Stream* st = find_stream(c, stream_id);
    std::uint32_t status = 0;
    if (st == nullptr) {
      status = static_cast<std::uint32_t>(WireErrorCode::UnknownStream);
    } else if (st->handle.recording() || st->finish_requested) {
      status = static_cast<std::uint32_t>(WireErrorCode::Protocol);
    } else {
      core::FlightRecorderConfig rcfg;
      if (interval != 0) rcfg.checkpoint_interval = interval;
      rcfg.note = "net RECS stream " + std::to_string(stream_id);
      beat_scratch_.clear();
      st->handle.record_start(std::make_unique<core::BufferRecorderSink>(),
                              beat_scratch_, rcfg);
      emit_beat_records(beat_scratch_);
    }
    core::StateWriter& w = rb_.begin(kTagRecordAck);
    w.u32(stream_id);
    w.u32(status);
    rb_.finish(c.outbuf);
  } else if (std::memcmp(f.tag, kTagRecordStop, 4) == 0) {
    const std::uint32_t stream_id = r.u32();
    r.expect_end();
    Stream* st = find_stream(c, stream_id);
    if (st == nullptr || !st->handle.recording()) {
      send_error(c, WireErrorCode::Protocol, stream_id, "RECX without recording",
                 false);
      return;
    }
    beat_scratch_.clear();
    std::unique_ptr<core::RecorderSink> sink = st->handle.record_stop(beat_scratch_);
    emit_beat_records(beat_scratch_);
    // The server always installs a BufferRecorderSink for RECS.
    auto* mem = static_cast<core::BufferRecorderSink*>(sink.get());
    const std::vector<std::uint8_t> blob = mem->take();
    core::StateWriter& w = rb_.begin(kTagRecordData);
    w.u32(stream_id);
    w.u32(static_cast<std::uint32_t>(blob.size()));
    w.bytes(blob.data(), blob.size());
    rb_.finish(c.outbuf);
  } else if (std::memcmp(f.tag, kTagStatRequest, 4) == 0) {
    r.expect_end();
    core::StateWriter& w = rb_.begin(kTagStatReply);
    encode_stats(w, stats());
    rb_.finish(c.outbuf);
  } else if (std::memcmp(f.tag, kTagBye, 4) == 0) {
    r.expect_end();
    c.closing = true;
    for (const auto& [id, st] : c.streams) st->finish_requested = true;
  } else {
    send_error(c, WireErrorCode::UnknownRecord, kNoStream,
               std::string("unknown record '") + f.tag + "'", /*fatal=*/true);
  }
}

void FleetServer::handle_open(Connection& c, PayloadReader& r) {
  const std::uint32_t stream_id = r.u32();
  r.expect_end();
  std::uint32_t status = 0;
  std::uint32_t worker = 0;
  if (find_stream(c, stream_id) != nullptr) {
    status = static_cast<std::uint32_t>(WireErrorCode::DuplicateStream);
  } else if (sessions_open_.load(std::memory_order_relaxed) >= cfg_.max_sessions) {
    status = static_cast<std::uint32_t>(WireErrorCode::TooManySessions);
  } else {
    auto st = std::make_unique<Stream>();
    st->handle = fleet_->open();  // least-loaded placement
    st->stream_id = stream_id;
    st->want_acks = c.want_acks;
    worker = st->handle.worker();
    routes_[st->handle.id()] = Route{&c, st.get()};
    c.streams.emplace(stream_id, std::move(st));
    sessions_open_.fetch_add(1, std::memory_order_relaxed);
  }
  core::StateWriter& w = rb_.begin(kTagOpenAck);
  w.u32(stream_id);
  w.u32(status);
  w.u32(worker);
  rb_.finish(c.outbuf);
}

void FleetServer::handle_chunk(Connection& c, PayloadReader& r) {
  const std::uint32_t stream_id = r.u32();
  const std::uint32_t n = r.u32();
  if (n > cfg_.fleet.max_chunk)
    throw WireError("CHNK of " + std::to_string(n) + " samples exceeds max_chunk " +
                    std::to_string(cfg_.fleet.max_chunk));
  ecg_scratch_.resize(n);
  z_scratch_.resize(n);
  r.f64_array(ecg_scratch_.data(), n);
  r.f64_array(z_scratch_.data(), n);
  r.expect_end();
  Stream* st = find_stream(c, stream_id);
  if (st == nullptr) {
    send_error(c, WireErrorCode::UnknownStream, stream_id, "CHNK", false);
    return;
  }
  if (st->finish_requested) {
    send_error(c, WireErrorCode::Protocol, stream_id, "CHNK after CLSE", false);
    return;
  }
  if (n == 0) return;
  // Fast path: nothing parked, hand the chunk straight to the fleet.
  if (st->pending.empty() &&
      st->handle.try_push(dsp::SignalView(ecg_scratch_.data(), n),
                          dsp::SignalView(z_scratch_.data(), n))) {
    ++chunks_since_rebalance_;
    return;
  }
  // Backpressured: park it in the stream's bounded tenant queue —
  // or shed it, explicitly, when the tenant budget is spent.
  if (st->pending.size() >= cfg_.tenant_pending_chunks) {
    ++st->shed_total;
    shed_chunks_.fetch_add(1, std::memory_order_relaxed);
    core::StateWriter& w = rb_.begin(kTagShed);
    w.u32(stream_id);
    w.u32(static_cast<std::uint32_t>(ShedReason::TenantQueueFull));
    w.u64(st->shed_total);
    rb_.finish(c.outbuf);
    return;
  }
  PendingChunk pc;
  pc.ecg.assign(ecg_scratch_.begin(), ecg_scratch_.end());
  pc.z.assign(z_scratch_.begin(), z_scratch_.end());
  st->pending.push_back(std::move(pc));
}

void FleetServer::pump_pending(Connection& c) {
  for (const auto& [id, st] : c.streams) {
    while (!st->pending.empty()) {
      const PendingChunk& pc = st->pending.front();
      if (!st->handle.try_push(
              dsp::SignalView(pc.ecg.data(), pc.ecg.size()),
              dsp::SignalView(pc.z.data(), pc.z.size())))
        break;
      st->pending.pop_front();
      ++chunks_since_rebalance_;
    }
    if (st->pending.empty() && st->finish_requested && !st->handle.finished())
      st->handle.try_finish();  // retried next tick when backpressured
  }
}

void FleetServer::pump_fleet_results() {
  beat_scratch_.clear();
  fleet_->poll(beat_scratch_);
  emit_beat_records(beat_scratch_);
}

void FleetServer::emit_beat_records(const std::vector<core::FleetBeat>& beats) {
  for (const core::FleetBeat& fb : beats) {
    const auto it = routes_.find(fb.session);
    if (it == routes_.end()) continue;  // consumer is gone; drop
    Connection& c = *it->second.conn;
    Stream& st = *it->second.stream;
    if (fb.end_of_session) {
      core::StateWriter& w = rb_.begin(kTagQuality);
      w.u32(st.stream_id);
      encode_quality(w, fb.session_summary);
      rb_.finish(c.outbuf);
      // Terminal record sent: the stream is complete. Unrouting first
      // keeps the handle destructor's finish-guard a no-op (the session
      // already finished).
      const std::uint32_t stream_id = st.stream_id;
      routes_.erase(it);
      c.streams.erase(stream_id);
      sessions_open_.fetch_sub(1, std::memory_order_relaxed);
      sessions_closed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      core::StateWriter& w = rb_.begin(kTagBeat);
      w.u32(st.stream_id);
      encode_beat(w, fb.beat);
      rb_.finish(c.outbuf);
    }
  }
}

void FleetServer::emit_acks() {
  for (const auto& [session, route] : routes_) {
    Stream& st = *route.stream;
    if (!st.want_acks) continue;
    const std::uint64_t done = st.handle.processed();
    if (done == st.last_ack) continue;
    st.last_ack = done;
    core::StateWriter& w = rb_.begin(kTagChunkAck);
    w.u32(st.stream_id);
    w.u64(done);
    rb_.finish(route.conn->outbuf);
  }
}

void FleetServer::maybe_rebalance() {
  if (cfg_.rebalance_period_chunks == 0 ||
      chunks_since_rebalance_ < cfg_.rebalance_period_chunks)
    return;
  chunks_since_rebalance_ = 0;
  // Live load = queued work items + resident unfinished sessions, the
  // depth signal worker_queue_depths() exists for.
  fleet_->worker_queue_depths(depth_scratch_);
  fleet_->worker_resident_sessions(resident_scratch_);
  std::size_t busiest = 0, idlest = 0;
  for (std::size_t wkr = 0; wkr < depth_scratch_.size(); ++wkr) {
    depth_scratch_[wkr] += resident_scratch_[wkr];
    if (depth_scratch_[wkr] > depth_scratch_[busiest]) busiest = wkr;
    if (depth_scratch_[wkr] < depth_scratch_[idlest]) idlest = wkr;
  }
  if (busiest == idlest ||
      depth_scratch_[busiest] - depth_scratch_[idlest] < cfg_.rebalance_min_gap)
    return;
  for (auto& [session, route] : routes_) {
    Stream& st = *route.stream;
    if (st.handle.finished() || st.handle.worker() != busiest) continue;
    beat_scratch_.clear();
    st.handle.migrate_to(static_cast<std::uint32_t>(idlest), beat_scratch_);
    migrations_.fetch_add(1, std::memory_order_relaxed);
    emit_beat_records(beat_scratch_);
    return;  // one migration per tick keeps the control plane gentle
  }
}

void FleetServer::flush_writes(Connection& c) {
  while (c.out_pos < c.outbuf.size()) {
    const ssize_t n = ::send(c.fd, c.outbuf.data() + c.out_pos,
                             c.outbuf.size() - c.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    c.dead = true;
    return;
  }
  if (c.out_pos == c.outbuf.size()) {
    c.outbuf.clear();
    c.out_pos = 0;
    if (c.closing && c.streams.empty()) c.dead = true;  // clean BYE_ exit
  } else if (c.outbuf.size() - c.out_pos > cfg_.max_outbuf_bytes) {
    // Slow consumer: it is not draining what it asked for; cut it loose
    // rather than buffer without bound. (The ERRR would only queue
    // behind the backlog it refuses to read, so there is no point.)
    c.dead = true;
  }
}

void FleetServer::send_error(Connection& c, WireErrorCode code, std::uint32_t stream,
                             const std::string& message, bool fatal) {
  core::StateWriter& w = rb_.begin(kTagError);
  encode_error(w, code, stream, message);
  rb_.finish(c.outbuf);
  if (fatal) {
    // Best-effort delivery of the refusal, then drop the connection.
    flush_writes(c);
    c.dead = true;
  }
}

void FleetServer::reap_dead() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& c = **it;
    if (!c.dead) {
      ++it;
      continue;
    }
    for (const auto& [id, st] : c.streams) {
      routes_.erase(st->handle.id());
      sessions_open_.fetch_sub(1, std::memory_order_relaxed);
      sessions_closed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (c.fd >= 0) ::close(c.fd);
    // Destroying the streams finishes their sessions (handle RAII, on
    // this pilot thread); the drained tail is unrouted and dropped.
    it = conns_.erase(it);
  }
}

} // namespace icgkit::net
