// Position-susceptibility study (Section V of the paper) on one subject:
// records 30 s in each of the three arm positions at each injection
// frequency, then reports (a) device-vs-thoracic correlation, (b) mean
// bioimpedance per position, and (c) the worst-case relative error a
// user would incur by moving the device mid-measurement.
#include "dsp/stats.h"
#include "report/table.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include <algorithm>
#include <cmath>
#include <iostream>

int main() {
  using namespace icgkit;

  const synth::SubjectProfile subject = synth::paper_roster()[2];
  synth::RecordingConfig cfg;
  cfg.duration_s = 30.0;
  const synth::SourceActivity source = generate_source(subject, cfg);

  std::cout << "Position study -- " << subject.name << "\n";

  report::Table table({"f (kHz)", "Z thorax", "Z pos1", "Z pos2", "Z pos3", "r pos1",
                       "r pos2", "r pos3"});
  double worst_error = 0.0;
  for (const double f : synth::kInjectionFrequenciesHz) {
    const synth::Recording thorax = measure_thoracic(subject, source, f);
    table.row().add(f / 1e3, 0).add(mean_bioimpedance(thorax), 2);
    double z[3];
    for (const auto pos : synth::kAllPositions) {
      const synth::Recording dev = measure_device(subject, source, f, pos);
      z[synth::index_of(pos)] = mean_bioimpedance(dev);
      table.add(z[synth::index_of(pos)], 1);
    }
    for (const auto pos : synth::kAllPositions) {
      const synth::Recording dev = measure_device(subject, source, f, pos);
      table.add(dsp::pearson(thorax.z_ohm, dev.z_ohm), 4);
    }
    // Worst pairwise relative error at this frequency (paper eq. 1-3).
    worst_error = std::max({worst_error, std::abs((z[1] - z[0]) / z[1]),
                            std::abs((z[1] - z[2]) / z[1]), std::abs((z[2] - z[0]) / z[2])});
  }
  table.print(std::cout);

  std::cout << "\nWorst-case relative error across positions: " << worst_error * 100.0
            << " % (paper: always below 20 % -- slight displacement from hand\n"
               " shaking does not impact the measurement much)\n";
  return 0;
}
