// CHF-screening scenario -- the paper's motivating application
// (Section I): congestive heart failure decompensation is preceded by
// thoracic fluid accumulation, which *lowers* the base impedance Z0 and
// raises the thoracic fluid content TFC = 1000/Z0, while systolic time
// intervals shift (PEP lengthens, LVET shortens) as contractility falls.
//
// This example simulates a week of daily 30 s touch measurements during
// which the subject gradually decompensates, runs each session through
// the pipeline, and applies a simple trend rule on the streamed
// parameters -- the kind of early-warning review a physician would do on
// the transmitted data.
#include "core/pipeline.h"
#include "report/table.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include <iostream>

int main() {
  using namespace icgkit;

  synth::SubjectProfile subject = synth::paper_roster()[3];
  synth::RecordingConfig cfg;
  cfg.duration_s = 30.0;
  core::PipelineConfig pipe_cfg;
  // Calibrate once against the healthy baseline posture; the follow-up
  // sessions reuse the factors, exactly as a deployed device would.
  const synth::TouchCalibration cal =
      touch_calibration(subject, 50e3, synth::Position::HoldToChest);
  pipe_cfg.body.z0_to_thoracic = cal.z0_scale;
  pipe_cfg.body.dzdt_to_thoracic = cal.dzdt_scale;
  const core::BeatPipeline pipeline(cfg.fs, pipe_cfg);

  std::cout << "Daily touch measurements during simulated decompensation ("
            << subject.name << ")\n\n";

  report::Table table({"day", "Z0 (Ohm)", "TFC (1/kOhm)", "PEP (ms)", "LVET (ms)",
                       "HR (bpm)", "SV (ml)", "flag"});

  double baseline_tfc = 0.0;
  double baseline_ratio = 0.0;
  int alarms = 0;
  for (int day = 0; day < 7; ++day) {
    // Decompensation trajectory: fluid accumulates (tissue resistance
    // falls), contractility drops (longer PEP, shorter LVET, smaller
    // dZ/dt max), sympathetic drive raises HR.
    const double severity = static_cast<double>(day) / 6.0;
    synth::SubjectProfile today = subject;
    today.arm_path.r0_ohm = subject.arm_path.r0_ohm * (1.0 - 0.18 * severity);
    today.arm_path.rinf_ohm = subject.arm_path.rinf_ohm * (1.0 - 0.18 * severity);
    today.icg.pep_s = subject.icg.pep_s * (1.0 + 0.25 * severity);
    today.icg.lvet_s = subject.icg.lvet_s * (1.0 - 0.15 * severity);
    today.icg.dzdt_max = subject.icg.dzdt_max * (1.0 - 0.25 * severity);
    today.rr.mean_hr_bpm = subject.rr.mean_hr_bpm * (1.0 + 0.10 * severity);
    today.seed = subject.seed + static_cast<std::uint64_t>(day) * 17;

    const synth::SourceActivity source = generate_source(today, cfg);
    const synth::Recording rec =
        measure_device(today, source, 50e3, synth::Position::HoldToChest);
    const core::PipelineResult res = pipeline.process(rec.ecg_mv, rec.z_ohm);
    const auto& s = res.summary;

    // Trend rule: alarm when TFC rises > 8 % over the day-0 baseline AND
    // the PEP/LVET ratio (inverse contractility index) rises > 20 %.
    const double ratio = s.lvet_s > 0.0 ? s.pep_s / s.lvet_s : 0.0;
    if (day == 0) {
      baseline_tfc = s.tfc_per_kohm;
      baseline_ratio = ratio;
    }
    const bool fluid_up = s.tfc_per_kohm > 1.08 * baseline_tfc;
    const bool contractility_down = ratio > 1.20 * baseline_ratio;
    const char* flag = (fluid_up && contractility_down) ? "ALERT"
                       : (fluid_up || contractility_down) ? "watch"
                                                          : "";
    if (fluid_up && contractility_down) ++alarms;

    table.row()
        .add(static_cast<long long>(day))
        .add(res.z0_mean_ohm, 1)
        .add(s.tfc_per_kohm, 3)
        .add(s.pep_s * 1000.0, 0)
        .add(s.lvet_s * 1000.0, 0)
        .add(s.hr_bpm, 1)
        .add(s.sv_kubicek_ml, 1)
        .add(std::string(flag));
  }
  table.print(std::cout);

  std::cout << "\n"
            << (alarms > 0 ? "Decompensation trend detected before day 7 -- the"
                             " early-onset window\nin which the paper argues CHF can"
                             " still be prevented by medication change."
                           : "No alert raised (unexpected for this trajectory).")
            << '\n';
  return alarms > 0 ? 0 : 1;
}
