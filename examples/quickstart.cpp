// Quickstart: synthesize a 30 s touch-device recording, run the full
// beat-to-beat pipeline, and print the hemodynamic parameters the device
// would stream to a physician (Z0, LVET, PEP, HR -- Section V of the
// paper), plus the derived stroke volume and cardiac output.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include "core/pipeline.h"
#include "report/table.h"
#include "synth/recording.h"
#include "synth/subject.h"

#include <iostream>

int main() {
  using namespace icgkit;

  // 1. A subject and a 30 s session at the paper's evaluation rate.
  const synth::SubjectProfile subject = synth::paper_roster()[0];
  synth::RecordingConfig cfg;
  cfg.duration_s = 30.0;
  cfg.fs = 250.0;
  const synth::SourceActivity source = generate_source(subject, cfg);

  // 2. "Touch" measurement: device held to the chest, 50 kHz injection
  //    (the frequency the paper uses for systolic-interval estimation).
  const synth::Recording rec =
      measure_device(subject, source, 50e3, synth::Position::HoldToChest);

  // 3. The full pipeline: ECG cleaning -> Pan-Tompkins R peaks -> ICG
  //    filtering -> C/B/X delineation -> quality gate -> hemodynamics.
  //    The SV estimators are defined for thoracic quantities, so the
  //    touch path carries a per-posture calibration (a real device gets
  //    these factors from a one-time comparison against a reference).
  core::PipelineConfig pipe_cfg;
  const synth::TouchCalibration cal =
      touch_calibration(subject, 50e3, synth::Position::HoldToChest);
  pipe_cfg.body.z0_to_thoracic = cal.z0_scale;
  pipe_cfg.body.dzdt_to_thoracic = cal.dzdt_scale;
  const core::BeatPipeline pipeline(cfg.fs, pipe_cfg);
  const core::PipelineResult res = pipeline.process(rec.ecg_mv, rec.z_ohm);

  std::cout << "icgkit quickstart -- " << subject.name << ", 30 s touch recording\n\n";

  report::Table beat_table({"beat", "RR (s)", "PEP (ms)", "LVET (ms)", "SV Kubicek (ml)",
                            "status"});
  int shown = 0;
  for (std::size_t i = 0; i < res.beats.size() && shown < 8; ++i) {
    const auto& b = res.beats[i];
    beat_table.row()
        .add(static_cast<long long>(i))
        .add(b.rr_s, 2)
        .add(b.hemo.pep_s * 1000.0, 0)
        .add(b.hemo.lvet_s * 1000.0, 0)
        .add(b.hemo.sv_kubicek_ml, 1)
        .add(core::describe_flaws(b.flaws));
    ++shown;
  }
  beat_table.print(std::cout);

  const auto& s = res.summary;
  std::cout << "\nSession summary (" << s.beats_used << " usable beats, "
            << s.beats_rejected << " rejected):\n"
            << "  Z0   = " << res.z0_mean_ohm << " Ohm\n"
            << "  HR   = " << s.hr_bpm << " bpm\n"
            << "  PEP  = " << s.pep_s * 1000.0 << " ms\n"
            << "  LVET = " << s.lvet_s * 1000.0 << " ms\n"
            << "  SV   = " << s.sv_kubicek_ml << " ml (Kubicek), " << s.sv_sramek_ml
            << " ml (Sramek-Bernstein)\n"
            << "  CO   = " << s.co_kubicek_l_min << " l/min\n"
            << "  TFC  = " << s.tfc_per_kohm << " 1/kOhm\n";
  return 0;
}
