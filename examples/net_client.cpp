// Network fleet demo: the wire protocol end to end on loopback, in one
// self-contained process.
//
// An in-process net::FleetServer binds an ephemeral 127.0.0.1 port; a
// net::FleetClient connects, negotiates HELO, opens 8 streams, and
// plays synthetic two-channel recordings through them in 64-sample
// CHNK records — exactly what a device gateway would send. Completed
// beats stream back as BEAT records while input is still being
// written; each stream ends with CLSE and its terminal QUAL summary.
// The same client verbs drive a remote `tools/serverd` unchanged —
// point connect at its port instead.
#include "net/client.h"
#include "net/server.h"
#include "report/table.h"
#include "synth/recording.h"

#include <iostream>
#include <vector>

int main() {
  using namespace icgkit;

  constexpr std::uint32_t kStreams = 8;
  constexpr std::size_t kChunk = 64;

  synth::RecordingConfig rcfg;
  rcfg.duration_s = 20.0;
  rcfg.session_seed = 11;
  const std::vector<synth::Recording> workload =
      synth::make_fleet_workload(kStreams, rcfg);

  net::ServerConfig scfg;
  scfg.fs_hz = workload[0].fs;
  scfg.fleet.workers = 2;
  scfg.fleet.max_chunk = kChunk;
  net::FleetServer server(scfg);
  if (const auto verdict = server.bind(); verdict != net::ServerStatus::Ok) {
    std::cerr << "bind refused: " << net::server_status_name(verdict) << "\n";
    return 1;
  }
  server.start();
  std::cout << "net_client: server on 127.0.0.1:" << server.port() << "\n";

  // want_acks: the client flow-controls on CACK records, capping each
  // stream's unacknowledged chunks at the server's advertised
  // max_inflight — which provably keeps the tenant queue under its shed
  // threshold (a well-behaved gateway never sees a SHED).
  net::FleetClient client;
  if (!client.connect_loopback(server.port(), /*want_acks=*/true)) {
    std::cerr << "connect failed\n";
    return 1;
  }
  const net::Hello& hello = client.server_hello();
  std::cout << "net_client: HELO ok — " << hello.workers << " workers, fs "
            << hello.fs_hz << " Hz, max_chunk " << hello.max_chunk << "\n";

  std::vector<net::ClientEvent> events;
  for (std::uint32_t s = 0; s < kStreams; ++s) client.open_stream(s);

  // Interleave chunk writes with event drains — results stream back
  // while input is still going out.
  struct Tally {
    std::uint64_t beats = 0, usable = 0;
    double pep_s = 0.0, hr_bpm = 0.0, co_l_min = 0.0;
    std::uint32_t worker = 0;
    core::QualitySummary quality;
  };
  std::vector<Tally> tally(kStreams);

  std::vector<std::uint64_t> sent(kStreams, 0), acked(kStreams, 0);
  std::size_t drained = 0;
  auto absorb_acks = [&] {
    for (; drained < events.size(); ++drained)
      if (events[drained].type == net::ClientEvent::Type::ChunkAck)
        acked[events[drained].stream] = events[drained].count;
  };

  const std::uint64_t window = hello.max_inflight;
  const std::size_t n = workload[0].ecg_mv.size();
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t len = std::min(kChunk, n - i);
    for (std::uint32_t s = 0; s < kStreams; ++s) {
      while (sent[s] - acked[s] >= window) {  // wait out the window
        client.poll_events(events, 10);
        absorb_acks();
      }
      const synth::Recording& rec = workload[s];
      client.send_chunk(s, {rec.ecg_mv.data() + i, len}, {rec.z_ohm.data() + i, len});
      ++sent[s];
    }
    client.poll_events(events, 0);
    absorb_acks();
  }
  for (std::uint32_t s = 0; s < kStreams; ++s) client.close_stream(s);

  // Drain until every stream's terminal QUAL has arrived.
  std::uint32_t closed = 0;
  while (closed < kStreams && client.connected()) {
    const std::size_t before = events.size();
    client.poll_events(events, 1000);
    for (std::size_t k = before; k < events.size(); ++k)
      if (events[k].type == net::ClientEvent::Type::Quality) ++closed;
  }

  for (const net::ClientEvent& ev : events) {
    switch (ev.type) {
      case net::ClientEvent::Type::OpenAck:
        tally[ev.stream].worker = ev.worker;
        break;
      case net::ClientEvent::Type::Beat: {
        Tally& t = tally[ev.stream];
        ++t.beats;
        if (!ev.beat.usable()) break;
        ++t.usable;
        t.pep_s += ev.beat.hemo.pep_s;
        t.hr_bpm += ev.beat.hemo.hr_bpm;
        t.co_l_min += ev.beat.hemo.co_kubicek_l_min;
        break;
      }
      case net::ClientEvent::Type::Quality:
        tally[ev.stream].quality = ev.quality;
        break;
      case net::ClientEvent::Type::Shed:
        std::cerr << "unexpected SHED on stream " << ev.stream << "\n";
        return 1;
      case net::ClientEvent::Type::Error:
        std::cerr << "server error: " << ev.error.message << "\n";
        return 1;
      default:
        break;
    }
  }

  report::Table table(
      {"stream", "worker", "beats", "usable", "PEP ms", "HR bpm", "CO l/min", "SNR dB"});
  for (std::uint32_t s = 0; s < kStreams; ++s) {
    const Tally& t = tally[s];
    const double k = t.usable > 0 ? 1.0 / static_cast<double>(t.usable) : 0.0;
    table.row()
        .add(static_cast<double>(s), 0)
        .add(static_cast<double>(t.worker), 0)
        .add(static_cast<double>(t.beats), 0)
        .add(static_cast<double>(t.usable), 0)
        .add(t.pep_s * k * 1e3, 1)
        .add(t.hr_bpm * k, 1)
        .add(t.co_l_min * k, 2)
        .add(t.quality.mean_snr_db(), 1);
  }
  table.print(std::cout);

  client.bye();
  server.stop();
  const net::ServerStats stats = server.stats();
  std::cout << "\nserved " << stats.sessions_closed << " streams, "
            << stats.total_samples << " samples, " << stats.total_beats
            << " beats over the wire\n";
  return 0;
}
