// Fleet server demo: one host process serving many concurrent monitoring
// sessions, the way a backend would terminate thousands of device
// streams.
//
// A pilot (ingest) loop plays the role of the network front end: it
// round-robins 64-sample chunks from 32 synthetic subjects into a
// SessionManager sharded over a small worker pool, drains completed
// beats as they arrive, and prints a per-session hemodynamic summary at
// the end — every number computed beat by beat, in flight.
//
// Halfway through, the demo exercises live rebalancing: worker 0 is
// drained for "maintenance" — every session it hosts is migrated (full
// checkpoint/restore round trip through core::Checkpoint blobs) onto
// the least-loaded remaining worker, mid-stream, without dropping a
// beat — then the fleet is evened out again. The per-session numbers
// are unchanged by the move: migration is byte-exact.
#include "core/fleet.h"
#include "report/table.h"
#include "synth/recording.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

int main() {
  using namespace icgkit;

  constexpr std::size_t kSessions = 32;
  constexpr std::size_t kChunk = 64;

  synth::RecordingConfig rcfg;
  rcfg.duration_s = 20.0;
  rcfg.session_seed = 5;
  const std::vector<synth::Recording> workload =
      synth::make_fleet_workload(8, rcfg);

  core::FleetConfig cfg;
  // At least two workers even on a single core (they timeshare fine):
  // the live-rebalance demo below needs somewhere to migrate to.
  cfg.workers = std::clamp(std::thread::hardware_concurrency(), 2u, 4u);
  cfg.max_chunk = kChunk;
  // Per-session ensemble averaging: every emitted beat also carries the
  // delineation of the running R-aligned template (ensemble_points), the
  // noise-robust timing estimate a monitoring backend would chart.
  cfg.pipeline.enable_ensemble = true;
  core::SessionManager fleet(workload[0].fs, cfg);
  std::vector<core::SessionHandle> handles;
  handles.reserve(kSessions);
  // open() homes each session on the least-loaded worker — which for a
  // fresh fleet opened back-to-back is exactly the historical id %
  // workers spread, so the numbers below are unchanged.
  for (std::size_t s = 0; s < kSessions; ++s) handles.push_back(fleet.open());
  fleet.start();

  report::banner(std::cout, "fleet_server: " + std::to_string(kSessions) +
                                " sessions on " + std::to_string(cfg.workers) +
                                " workers");

  struct SessionTally {
    std::size_t beats = 0, usable = 0, ens_beats = 0;
    double pep_s = 0.0, lvet_s = 0.0, hr_bpm = 0.0, co_l_min = 0.0;
    double ens_pep_s = 0.0, ens_lvet_s = 0.0;
  };
  std::vector<SessionTally> tally(kSessions);
  std::vector<core::FleetBeat> sink;
  sink.reserve(4096);

  const double fs = workload[0].fs;
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = workload[0].ecg_mv.size();
  bool rebalanced = false;
  for (std::size_t i = 0; i < n; i += kChunk) {
    if (!rebalanced && i >= n / 2 && cfg.workers > 1) {
      // Live rebalance: drain worker 0 mid-stream (checkpoint each
      // resident session, restore it on the least-loaded other worker),
      // then spread the fleet evenly again. All in-flight state — filter
      // lines, detector thresholds, ensemble templates — moves in the
      // blob; the beat streams are byte-identical to a pinned fleet.
      std::size_t moved = 0;
      for (std::uint32_t s = 0; s < kSessions; ++s)
        if (handles[s].worker() == 0) {
          // Spread the evacuees across the surviving workers.
          const auto target =
              1 + static_cast<std::uint32_t>(moved % (cfg.workers - 1));
          handles[s].migrate_to(target, sink);
          ++moved;
        }
      std::cout << "[rebalance] drained worker 0 at t=" << static_cast<double>(i) / fs
                << " s: " << moved << " sessions migrated live\n";
      for (std::uint32_t s = 0; s < kSessions; ++s)
        if (s % cfg.workers != handles[s].worker())
          handles[s].migrate_to(s % static_cast<std::uint32_t>(cfg.workers), sink);
      std::cout << "[rebalance] fleet re-spread across " << cfg.workers << " workers ("
                << fleet.migrations() << " total migrations)\n";
      rebalanced = true;
    }
    const std::size_t len = std::min(kChunk, n - i);
    for (std::size_t s = 0; s < kSessions; ++s) {
      const synth::Recording& rec = workload[s % workload.size()];
      handles[s].push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                      dsp::SignalView(rec.z_ohm.data() + i, len), sink);
    }
  }
  fleet.run_to_completion(sink);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<core::QualitySummary> quality(kSessions);
  for (const core::FleetBeat& fb : sink) {
    if (fb.end_of_session) {
      // Terminal record: the session's quality aggregate (usable
      // fraction, SNR, contact gaps, recovery resets).
      quality[fb.session] = fb.session_summary;
      continue;
    }
    SessionTally& t = tally[fb.session];
    ++t.beats;
    if (fb.beat.ensemble_points.has_value()) {
      ++t.ens_beats;
      const auto& e = *fb.beat.ensemble_points;
      t.ens_pep_s += static_cast<double>(e.b - e.r) / fs;
      t.ens_lvet_s += static_cast<double>(e.x - e.b) / fs;
    }
    if (!fb.beat.usable()) continue;
    ++t.usable;
    t.pep_s += fb.beat.hemo.pep_s;
    t.lvet_s += fb.beat.hemo.lvet_s;
    t.hr_bpm += fb.beat.hemo.hr_bpm;
    t.co_l_min += fb.beat.hemo.co_kubicek_l_min;
  }

  report::Table table({"session", "beats", "usable", "PEP ms", "LVET ms", "HR bpm",
                       "CO l/min", "ens PEP ms", "ens LVET ms", "SNR dB"});
  for (std::size_t s = 0; s < kSessions; ++s) {
    const SessionTally& t = tally[s];
    const double k = t.usable > 0 ? 1.0 / static_cast<double>(t.usable) : 0.0;
    const double ke = t.ens_beats > 0 ? 1.0 / static_cast<double>(t.ens_beats) : 0.0;
    table.row()
        .add(static_cast<double>(s), 0)
        .add(static_cast<double>(t.beats), 0)
        .add(static_cast<double>(t.usable), 0)
        .add(t.pep_s * k * 1e3, 1)
        .add(t.lvet_s * k * 1e3, 1)
        .add(t.hr_bpm * k, 1)
        .add(t.co_l_min * k, 2)
        .add(t.ens_pep_s * ke * 1e3, 1)
        .add(t.ens_lvet_s * ke * 1e3, 1)
        .add(quality[s].mean_snr_db(), 1);
  }
  table.print(std::cout);

  std::cout << "\nprocessed " << fleet.total_samples() << " samples, "
            << fleet.total_beats() << " beats in " << wall_s << " s ("
            << static_cast<double>(fleet.total_samples()) / wall_s
            << " samples/s aggregate)\n";
  return 0;
}
