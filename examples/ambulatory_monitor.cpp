// Ambulatory monitoring example: the embedded-style streaming pipeline
// consuming the recording chunk by chunk (the way firmware drains the ADC
// FIFO), each completed beat reported once, with the radio/power model
// projecting battery life for the session's actual workload.
#include "core/pipeline.h"
#include "platform/mcu.h"
#include "platform/power_model.h"
#include "platform/radio.h"
#include "report/table.h"
#include "synth/recording.h"

#include <iostream>

int main() {
  using namespace icgkit;

  const synth::SubjectProfile subject = synth::paper_roster()[1];
  synth::RecordingConfig cfg;
  cfg.duration_s = 60.0;
  const synth::SourceActivity source = generate_source(subject, cfg);
  const synth::Recording rec =
      measure_device(subject, source, 50e3, synth::Position::HoldToChest);

  std::cout << "Streaming beat-to-beat monitor, 0.2 s chunks (" << subject.name << ")\n\n";

  core::StreamingBeatPipeline stream(cfg.fs);
  const std::size_t chunk = static_cast<std::size_t>(0.2 * cfg.fs);
  std::size_t reported = 0;
  std::size_t bytes_sent = 0;
  for (std::size_t i = 0; i < rec.ecg_mv.size(); i += chunk) {
    const std::size_t len = std::min(chunk, rec.ecg_mv.size() - i);
    const auto beats = stream.push(dsp::SignalView(rec.ecg_mv.data() + i, len),
                                   dsp::SignalView(rec.z_ohm.data() + i, len));
    for (const auto& beat : beats) {
      ++reported;
      bytes_sent += 16; // {Z0, LVET, PEP, HR} as 4 floats
      if (reported <= 10 || reported % 20 == 0) {
        std::cout << "beat " << reported << " @ t="
                  << static_cast<double>(beat.points.r) / cfg.fs << " s"
                  << "  HR=" << beat.hemo.hr_bpm << "  PEP=" << beat.hemo.pep_s * 1000.0
                  << " ms  LVET=" << beat.hemo.lvet_s * 1000.0 << " ms  "
                  << core::describe_flaws(beat.flaws) << '\n';
      }
    }
  }
  for (const auto& beat : stream.finish()) {
    ++reported;
    bytes_sent += 16;
    (void)beat;
  }
  std::cout << "\n" << reported << " beats reported over " << cfg.duration_s
            << " s; " << bytes_sent << " bytes over the air\n";

  // Power projection for this workload.
  const platform::BleRadio radio;
  const double radio_duty = radio.duty_cycle(16, cfg.duration_s / std::max<std::size_t>(1, reported));
  platform::McuConfig mcu;
  const double mcu_duty =
      estimate_cpu_load(core::PipelineConfig{}, cfg.fs, 70.0, mcu).duty_cycle;

  platform::DutyCycleProfile duty;
  duty.mcu_active = mcu_duty;
  duty.radio_tx = radio_duty;
  const platform::PowerModel power(duty);
  std::cout << "\nPower projection for this workload:\n"
            << "  MCU duty   = " << mcu_duty * 100.0 << " %\n"
            << "  radio duty = " << radio_duty * 100.0 << " %\n"
            << "  avg current= " << power.average_current_ma() << " mA\n"
            << "  battery    = "
            << power.battery_life_hours(platform::kPaperBatteryMah) << " h on "
            << platform::kPaperBatteryMah << " mAh ("
            << power.battery_life_hours(platform::kPaperBatteryMah) / 24.0 << " days)\n";
  return 0;
}
