/*
 * embed_client.c — embedding quickstart for the icgkit C ABI.
 *
 * Compiled as plain C (not C++) on purpose: this file is the proof that
 * capi/icgkit.h is consumable from a C toolchain.  It is built twice:
 *
 *  - `embed_client` links the full hosted library and pulls its input
 *    from the synthetic-subject generator (ICG_HAVE_DEMO_SYNTH).
 *  - `embed_smoke` (firmware CI profile) links the -Os -fno-exceptions
 *    static archive libicgkit_embedded.a, which has no synth layer, so
 *    it falls back to a self-contained C signal generator below.  That
 *    also makes the target a link check: any symbol the embedded
 *    archive fails to provide breaks this build.
 *
 * Flow (identical for both builds): create a session, stream fixed-size
 * chunks, poll beats as they surface, finish, read the quality summary,
 * then round-trip a checkpoint into a second session.  Every call's
 * status is checked — the ABI never aborts on bad input, it reports.
 */

#include "capi/icgkit.h"

#include <math.h>
#include <stdio.h>
#include <string.h>

#define SAMPLE_RATE_HZ 250.0
#define DURATION_S 40.0
#define TOTAL_SAMPLES 10000u /* DURATION_S * SAMPLE_RATE_HZ */
#define CHUNK 250u

/* Static, not stack: firmware targets keep large buffers out of the
 * (small, fixed) thread stack. */
static double g_ecg_mv[TOTAL_SAMPLES];
static double g_z_ohm[TOTAL_SAMPLES];

#if !defined(ICG_HAVE_DEMO_SYNTH)
/*
 * Fallback generator: a deterministic, purely arithmetic ECG + impedance
 * pair good enough to drive the detector.  ECG: 1 mV triangular QRS
 * complexes at 66 bpm over a wandering baseline.  Impedance: 25 Ohm
 * base with a ~0.12 Ohm systolic ejection dip trailing each R wave.
 */
static void fill_demo_recording(void) {
  const double rr_s = 60.0 / 66.0;
  unsigned i;
  for (i = 0; i < TOTAL_SAMPLES; ++i) {
    const double t = (double)i / SAMPLE_RATE_HZ;
    const double phase = fmod(t, rr_s) / rr_s; /* 0..1 through the beat */
    double ecg = 0.05 * sin(2.0 * 3.14159265358979 * 0.25 * t);
    double z = 25.0 + 0.02 * sin(2.0 * 3.14159265358979 * 0.2 * t);
    /* QRS: 40 ms triangle centred at 10% of the RR interval. */
    {
      const double qrs = (phase - 0.10) / (0.020 / rr_s);
      if (qrs > -1.0 && qrs < 1.0) ecg += 1.0 * (1.0 - fabs(qrs));
    }
    /* P and T bumps so the ECG band shape is not a bare impulse train. */
    ecg += 0.12 * exp(-0.5 * pow((phase - 0.02) / 0.02, 2.0));
    ecg += 0.25 * exp(-0.5 * pow((phase - 0.35) / 0.05, 2.0));
    /* Ejection dip: impedance falls ~120 ms after R, recovers by 55%. */
    z -= 0.12 * exp(-0.5 * pow((phase - 0.28) / 0.07, 2.0));
    g_ecg_mv[i] = ecg;
    g_z_ohm[i] = z;
  }
}
#endif

static int fill_recording(void) {
#if defined(ICG_HAVE_DEMO_SYNTH)
  uint32_t written = 0;
  const int rc = icg_demo_synth_recording(0u, DURATION_S, SAMPLE_RATE_HZ, g_ecg_mv,
                                          g_z_ohm, TOTAL_SAMPLES, &written);
  if (rc != ICG_OK) {
    fprintf(stderr, "synth recording failed: %s\n", icg_last_error());
    return -1;
  }
  if (written != TOTAL_SAMPLES) {
    fprintf(stderr, "synth recording returned %u samples, expected %u\n",
            (unsigned)written, (unsigned)TOTAL_SAMPLES);
    return -1;
  }
#else
  fill_demo_recording();
#endif
  return 0;
}

/* Drains every queued beat, counting them and remembering the last one. */
static int drain_beats(icg_session* session, icg_beat* last, unsigned* count) {
  icg_beat beat;
  int rc;
  while ((rc = icg_session_poll_beat(session, &beat)) == 1) {
    *last = beat;
    ++*count;
  }
  return rc; /* 0 = drained, negative = error */
}

static int run_backend(uint32_t backend, const char* name) {
  icg_config cfg;
  icg_session* session;
  icg_session* twin;
  icg_quality_summary quality;
  icg_beat last;
  unsigned beats = 0;
  unsigned offset;
  int rc;

  memset(&last, 0, sizeof last);
  if (icg_config_init(&cfg) != ICG_OK) return -1;
  cfg.backend = backend;
  cfg.sample_rate_hz = SAMPLE_RATE_HZ;

  session = icg_session_create(&cfg);
  if (session == NULL) {
    fprintf(stderr, "[%s] create failed: %s\n", name, icg_last_error());
    return -1;
  }

  for (offset = 0; offset < TOTAL_SAMPLES; offset += CHUNK) {
    rc = icg_session_push(session, g_ecg_mv + offset, g_z_ohm + offset, CHUNK);
    if (rc < 0) {
      fprintf(stderr, "[%s] push failed: %s\n", name, icg_last_error());
      return -1;
    }
    if (drain_beats(session, &last, &beats) < 0) return -1;
  }

  /* Checkpoint mid-state (before finish) and restore it into a twin
   * session — the blob format is the same one the C++ API emits. */
  {
    /* The blob holds the analysis window ring buffers, so it scales
     * with window_s * sample_rate: ~0.5 MiB covers the defaults. A real
     * firmware would size this once via icg_session_checkpoint_size. */
    static uint8_t blob[512u * 1024u];
    uint32_t written = 0;
    const uint32_t need = icg_session_checkpoint_size(session);
    if (need == 0 || need > sizeof blob) {
      fprintf(stderr, "[%s] checkpoint size %u unusable: %s\n", name,
              (unsigned)need, icg_last_error());
      return -1;
    }
    rc = icg_session_checkpoint(session, blob, sizeof blob, &written);
    if (rc != ICG_OK) {
      fprintf(stderr, "[%s] checkpoint failed: %s\n", name, icg_last_error());
      return -1;
    }
    twin = icg_session_create(&cfg);
    if (twin == NULL) return -1;
    /* A corrupt or truncated blob must come back as a negative status —
     * never a panic/abort — even in the embedded build, whose core has
     * no exceptions to unwind with.  This is the firmware CI's smoke
     * check of the boundary's checked restore path. */
    blob[written / 2] ^= 0xFFu;
    rc = icg_session_restore(twin, blob, written);
    if (rc != ICG_ERR_BAD_CHECKPOINT) {
      fprintf(stderr, "[%s] corrupt blob not refused (rc=%d)\n", name, rc);
      return -1;
    }
    blob[written / 2] ^= 0xFFu; /* undo the bit flip */
    rc = icg_session_restore(twin, blob, written / 2);
    if (rc != ICG_ERR_BAD_CHECKPOINT) {
      fprintf(stderr, "[%s] truncated blob not refused (rc=%d)\n", name, rc);
      return -1;
    }
    rc = icg_session_restore(twin, blob, written);
    if (rc != ICG_OK) {
      fprintf(stderr, "[%s] restore failed: %s\n", name, icg_last_error());
      return -1;
    }
    if (icg_session_destroy(twin) != ICG_OK) return -1;
    printf("[%s] checkpoint round-trip: %u bytes\n", name, (unsigned)written);
  }

  rc = icg_session_finish(session);
  if (rc < 0) {
    fprintf(stderr, "[%s] finish failed: %s\n", name, icg_last_error());
    return -1;
  }
  if (drain_beats(session, &last, &beats) < 0) return -1;

  rc = icg_session_quality(session, &quality);
  if (rc != ICG_OK) return -1;

  printf("[%s] beats=%u usable=%u last: hr=%.1f bpm pep=%.1f ms lvet=%.1f ms "
         "sv=%.1f ml\n",
         name, beats, (unsigned)quality.usable, last.hr_bpm, last.pep_s * 1e3,
         last.lvet_s * 1e3, last.sv_kubicek_ml);

  if (icg_session_destroy(session) != ICG_OK) return -1;
  if (icg_session_destroy(session) != ICG_ERR_BAD_HANDLE) {
    fprintf(stderr, "[%s] double destroy was not rejected\n", name);
    return -1;
  }
  if (beats == 0) {
    fprintf(stderr, "[%s] no beats detected\n", name);
    return -1;
  }
  return 0;
}

int main(void) {
  if (icg_abi_version() != ICG_ABI_VERSION) {
    fprintf(stderr, "ABI mismatch: header %u, library %u\n",
            (unsigned)ICG_ABI_VERSION, (unsigned)icg_abi_version());
    return 1;
  }
  if (fill_recording() != 0) return 1;
  if (run_backend(ICG_BACKEND_DOUBLE, "double") != 0) return 1;
  if (run_backend(ICG_BACKEND_Q31, "q31") != 0) return 1;
  printf("embed client OK\n");
  return 0;
}
