#!/usr/bin/env python3
"""Bench-regression gate for the Release CI job.

Compares the JSON the benches just wrote (BENCH_streaming.json,
BENCH_fleet.json, BENCH_fixed.json, BENCH_scenarios.json,
BENCH_checkpoint.json, BENCH_batch.json, BENCH_replay.json) against
the committed floors in bench/bench_baselines.json and exits non-zero
on any regression, so a change that silently erodes the streaming
speedup, fleet scaling, the fixed-point pipeline's beat-level
accuracy, the corruption robustness, the checkpoint subsystem's blob
economy, or the flight recorder's replay fidelity fails the build
instead of landing.

Every expected input is checked up front: a missing or unparseable
BENCH_*.json (or baseline key) produces one clear per-file/per-key
message naming the bench that should have written it — never a raw
traceback.

The fleet scaling floor only arms when the bench itself reports
scaling_enforced (>= 4 hardware threads on the runner); determinism
across worker counts is enforced unconditionally. The fixed-point gate
requires exact beat-count parity with the double engine, identical
quality flags, and worst-case PEP/LVET deviation under the committed
ceiling on the full study protocol. The scenario gate requires the
clean tier to stay a no-op with double/Q31 beat parity, and the
moderate-corruption tier to keep the committed detection sensitivity
and PPV floors on BOTH backends. The checkpoint gate requires
byte-identical round-trip and migrated-fleet output (deterministic, so
unconditional) plus blob sizes under the committed ceiling; the
save/restore latency and migration throughput are reported but not
gated (wall-time floors are runner-dependent noise). The replay gate
requires byte-identical verify and seek replays, recording overhead on
the push hot path under the committed ceiling on both backends, and —
the one deliberate exception to the no-wall-time rule — seek latency
under a budget DERIVED from BENCH_checkpoint.json's own measured
restore time plus a committed suffix allowance, so the two benches
share one floor instead of drifting apart.

The firmware-profile CI job runs `--only footprint` instead: it checks
just BENCH_footprint.json (written by ci/extract_footprint.py over
libicgkit_embedded.a) against the committed .text/.bss budgets, so a
change that bloats the embedded library past its flash/RAM allowance
fails that job without requiring the hosted benches to have run.
"""
import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# Which bench executable (or tool) is responsible for each expected input.
BENCH_INPUTS = {
    "BENCH_streaming.json": "./bench_cpu_duty_cycle",
    "BENCH_fleet.json": "./bench_fleet_throughput",
    "BENCH_fixed.json": "./bench_fixed_pipeline",
    "BENCH_scenarios.json": "./bench_scenarios",
    "BENCH_checkpoint.json": "./bench_checkpoint",
    "BENCH_batch.json": "./bench_batch",
    "BENCH_replay.json": "./bench_replay",
    "BENCH_footprint.json": "ci/extract_footprint.py",
    "BENCH_server.json": "./bench_server",
}

# The hosted-bench set the Release job gates; the footprint and server
# inputs come from their own matrix jobs (`--only footprint`,
# `--only server`).
HOSTED_INPUTS = [n for n in BENCH_INPUTS
                 if n not in ("BENCH_footprint.json", "BENCH_server.json")]


def load_inputs(names):
    """Loads the baselines plus the named bench outputs, collecting one
    clear message per missing/invalid file instead of stopping at (or
    crashing on) the first."""
    problems = []
    results = {}

    def read_json(path: pathlib.Path, hint: str):
        if not path.exists():
            problems.append(f"{path.name}: missing — {hint}")
            return None
        try:
            with open(path) as f:
                return json.load(f)
        except json.JSONDecodeError as e:
            problems.append(f"{path.name}: invalid JSON ({e}) — {hint}")
            return None

    results["baselines"] = read_json(
        ROOT / "bench" / "bench_baselines.json",
        "the committed floors file must exist in the repo")
    for name in names:
        results[name] = read_json(
            ROOT / name, f"did {BENCH_INPUTS[name]} run before the gate?")

    if problems:
        print("BENCH GATE INPUTS MISSING OR INVALID:")
        for p in problems:
            print(f"  - {p}")
        sys.exit(1)
    return results


class Baselines:
    """Keyed access to the committed floors with a clear per-key error
    that names the bench binary whose gate needed the key."""

    def __init__(self, data, owner=None):
        self.data = data
        self.owner = owner

    def owned_by(self, binary):
        """A view whose missing-key errors blame `binary`'s gate."""
        return Baselines(self.data, binary)

    def __getitem__(self, key):
        if key not in self.data:
            blame = (f" (needed by the {self.owner} gate)"
                     if self.owner else "")
            sys.exit(f"FAIL: bench/bench_baselines.json has no key '{key}'"
                     f"{blame} — add the committed floor the gate expects")
        return self.data[key]


def check_footprint(footprint, baselines):
    """Gates the embedded library's .text/.bss totals against the
    committed budget, reporting actual vs budget (and the headroom or
    overshoot) so a failure says how far over it went."""
    failures = []
    text_kb = footprint.get("text_bytes", float("inf")) / 1024.0
    bss_kb = footprint.get("bss_bytes", float("inf")) / 1024.0
    data_kb = footprint.get("data_bytes", 0.0) / 1024.0
    text_budget = baselines["footprint_max_text_kb"]
    bss_budget = baselines["footprint_max_bss_kb"]

    for label, actual, budget in (
            (".text (flash)", text_kb, text_budget),
            (".bss (static RAM)", bss_kb, bss_budget)):
        delta = actual - budget
        state = f"{-delta:.1f} KiB headroom" if delta <= 0 else f"{delta:.1f} KiB OVER"
        print(f"embedded {label}: {actual:.1f} KiB (budget {budget} KiB, {state})")
        if delta > 0:
            failures.append(
                f"embedded {label} {actual:.1f} KiB exceeds the {budget} KiB "
                f"budget by {delta:.1f} KiB — trim it or justify a budget bump "
                "in bench/bench_baselines.json")
    print(f"embedded .data: {data_kb:.1f} KiB (reported, not gated); "
          f"{footprint.get('members', 0)} objects, "
          f"compiler: {footprint.get('compiler') or 'unrecorded'}")
    worst = footprint.get("top_symbols", [])[:3]
    if worst:
        print("largest symbols: " + ", ".join(
            f"{s['symbol']} ({s['bytes'] / 1024.0:.1f} KiB)" for s in worst))
    return failures


def check_server(server, baselines):
    """Gates the loopback soak: zero beat-byte divergence and explicit-
    only backpressure are unconditional correctness contracts; the
    skewed-load phase must actually migrate; throughput and ack p99
    hold committed floors (deliberately loose — the soak runs on the
    scaled-down CI matrix entry, often a small runner)."""
    failures = []
    sessions = server.get("sessions", 0)
    min_sessions = baselines["server_min_sessions"]
    print(f"server soak sessions: {sessions} (floor {min_sessions})")
    if sessions < min_sessions:
        failures.append(
            f"server soak ran {sessions} sessions, floor is {min_sessions}")

    if not server.get("beat_bytes_identical", False):
        failures.append(
            "server-delivered beat bytes diverged from the direct in-process "
            "feed (wire/fleet determinism bug)")
    else:
        print("server determinism: every session's beat bytes identical to "
              "the direct feed")

    shed = server.get("shed_chunks", 1)
    if shed != 0:
        failures.append(
            f"{shed} chunks shed against a CACK-windowed client — a correct "
            "client must never be shed (flow-control contract)")
    else:
        print("server backpressure: zero sheds against the windowed client")

    migrations = server.get("skew_migrations", 0)
    if migrations < 1:
        failures.append(
            "skewed-load phase produced no migrations — the periodic "
            "rebalancer is not rebalancing")
    else:
        print(f"server rebalancing: {migrations} migrations under skewed load, "
              f"{server.get('skew_divergent', '?')} divergent post-migration "
              "streams")
    if server.get("skew_divergent", 1) != 0:
        failures.append("post-migration streams diverged from the direct feed")

    throughput = server.get("samples_per_sec", 0.0)
    throughput_floor = baselines["server_min_samples_per_sec"]
    print(f"server ingest: {throughput:.0f} samples/s (floor {throughput_floor:.0f})")
    if throughput < throughput_floor:
        failures.append(
            f"server ingest {throughput:.0f} samples/s below floor "
            f"{throughput_floor:.0f}")

    p99 = server.get("latency_p99_ms", float("inf"))
    p99_ceiling = baselines["server_max_p99_ms"]
    print(f"server chunk->CACK p99: {p99:.1f} ms (ceiling {p99_ceiling})")
    if p99 > p99_ceiling:
        failures.append(
            f"server chunk->CACK p99 {p99:.1f} ms exceeds ceiling {p99_ceiling} ms")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description="bench/footprint regression gate")
    ap.add_argument("--only", choices=["footprint", "server"],
                    help="check a single gate instead of the hosted-bench set")
    args = ap.parse_args()

    if args.only == "server":
        inputs = load_inputs(["BENCH_server.json"])
        failures = check_server(
            inputs["BENCH_server.json"],
            Baselines(inputs["baselines"]).owned_by(
                BENCH_INPUTS["BENCH_server.json"]))
        if failures:
            print("\nSERVER GATE FAILED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nserver gate: loopback soak within all floors")
        return 0

    if args.only == "footprint":
        inputs = load_inputs(["BENCH_footprint.json"])
        failures = check_footprint(
            inputs["BENCH_footprint.json"],
            Baselines(inputs["baselines"]).owned_by(
                BENCH_INPUTS["BENCH_footprint.json"]))
        if failures:
            print("\nFOOTPRINT GATE FAILED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nfootprint gate: embedded library within budget")
        return 0

    inputs = load_inputs(HOSTED_INPUTS)
    base = Baselines(inputs["baselines"])
    # Per-gate views: a missing baseline key names the bench it belongs to.
    b_stream = base.owned_by(BENCH_INPUTS["BENCH_streaming.json"])
    b_fleet = base.owned_by(BENCH_INPUTS["BENCH_fleet.json"])
    b_fixed = base.owned_by(BENCH_INPUTS["BENCH_fixed.json"])
    b_scen = base.owned_by(BENCH_INPUTS["BENCH_scenarios.json"])
    b_ckpt = base.owned_by(BENCH_INPUTS["BENCH_checkpoint.json"])
    b_batch = base.owned_by(BENCH_INPUTS["BENCH_batch.json"])
    b_replay = base.owned_by(BENCH_INPUTS["BENCH_replay.json"])
    streaming = inputs["BENCH_streaming.json"]
    fleet = inputs["BENCH_fleet.json"]
    fixed = inputs["BENCH_fixed.json"]
    scenarios = inputs["BENCH_scenarios.json"]
    checkpoint = inputs["BENCH_checkpoint.json"]
    failures = []

    speedup = streaming.get("speedup_at_64", 0.0)
    floor = b_stream["streaming_speedup_at_64_min"]
    print(f"streaming speedup at 64-sample chunks: {speedup:.1f}x (floor {floor}x)")
    if speedup < floor:
        failures.append(f"streaming speedup {speedup:.1f}x below floor {floor}x")

    sessions = fleet.get("sessions", 0)
    min_sessions = b_fleet["fleet_min_sessions"]
    print(f"fleet sessions: {sessions} (floor {min_sessions})")
    if sessions < min_sessions:
        failures.append(f"fleet bench ran {sessions} sessions, floor is {min_sessions}")

    if not fleet.get("identical_across_workers", False):
        failures.append("fleet beat streams differ across worker counts (determinism)")
    else:
        print("fleet determinism: byte-identical across worker counts")

    scaling = fleet.get("scaling_1_to_4", 0.0)
    scaling_floor = b_fleet["fleet_scaling_1_to_4_min"]
    if fleet.get("scaling_enforced", False):
        print(f"fleet scaling 1->4 workers: {scaling:.2f}x (floor {scaling_floor}x)")
        if scaling < scaling_floor:
            failures.append(
                f"fleet 1->4 worker scaling {scaling:.2f}x below floor {scaling_floor}x")
    else:
        hw = fleet.get("hardware_threads", 0)
        print(f"fleet scaling 1->4 workers: {scaling:.2f}x "
              f"(gate skipped: {hw} hardware threads — see bench/README.md "
              "for the local multi-core verification protocol)")

    if not fixed.get("beat_parity", False):
        failures.append("fixed pipeline lost beat-count parity with the double engine")
    else:
        print(f"fixed pipeline beat parity: {fixed.get('beats_compared', 0)} beats")
    flaw_mismatches = fixed.get("flaw_mismatches", 1)
    if flaw_mismatches != 0:
        failures.append(
            f"fixed pipeline quality gate disagrees on {flaw_mismatches} beats")
    pep_dev = fixed.get("worst_pep_dev_ms", float("inf"))
    lvet_dev = fixed.get("worst_lvet_dev_ms", float("inf"))
    pep_ceiling = b_fixed["fixed_max_pep_dev_ms"]
    lvet_ceiling = b_fixed["fixed_max_lvet_dev_ms"]
    print(f"fixed pipeline worst dev: PEP {pep_dev:.3f} ms (ceiling {pep_ceiling}), "
          f"LVET {lvet_dev:.3f} ms (ceiling {lvet_ceiling})")
    if pep_dev >= pep_ceiling:
        failures.append(f"fixed PEP deviation {pep_dev:.3f} ms >= ceiling {pep_ceiling}")
    if lvet_dev >= lvet_ceiling:
        failures.append(f"fixed LVET deviation {lvet_dev:.3f} ms >= ceiling {lvet_ceiling}")
    duty_ratio = fixed.get("duty_ratio", 0.0)
    duty_floor = b_fixed["fixed_min_duty_ratio"]
    print(f"fixed pipeline modeled duty-cycle ratio double/Q31: {duty_ratio:.2f}x "
          f"(floor {duty_floor}x)")
    if duty_ratio < duty_floor:
        failures.append(
            f"fixed duty-cycle ratio {duty_ratio:.2f}x below floor {duty_floor}x")

    if not scenarios.get("clean_noop_identical", False):
        failures.append("scenario clean tier altered the recording (must be a no-op)")
    if not scenarios.get("clean_beat_parity", False):
        failures.append("scenario clean tier lost double/Q31 beat parity")
    sens_floor = b_scen["scenario_min_sensitivity_moderate"]
    ppv_floor = b_scen["scenario_min_ppv_moderate"]
    for backend in ("double", "q31"):
        sens = scenarios.get(f"moderate_sensitivity_{backend}", 0.0)
        ppv = scenarios.get(f"moderate_ppv_{backend}", 0.0)
        print(f"scenario moderate tier [{backend}]: sensitivity {sens:.4f} "
              f"(floor {sens_floor}), PPV {ppv:.4f} (floor {ppv_floor})")
        if sens < sens_floor:
            failures.append(
                f"moderate-corruption sensitivity [{backend}] {sens:.4f} < {sens_floor}")
        if ppv < ppv_floor:
            failures.append(f"moderate-corruption PPV [{backend}] {ppv:.4f} < {ppv_floor}")

    # --- checkpoint/restore + live migration ------------------------------
    if not checkpoint.get("roundtrip_identical", False):
        failures.append("checkpoint round trip is not byte-identical (save/restore bug)")
    else:
        print("checkpoint round trip: byte-identical on both backends")
    if not checkpoint.get("migration_identical", False):
        failures.append(
            "migrated-fleet output differs from the pinned fleet (migration bug)")
    else:
        print(f"fleet migration: {checkpoint.get('migrations', 0)} live migrations, "
              "byte-identical to the pinned fleet")
    blob_ceiling_kb = b_ckpt["checkpoint_max_blob_kb"]
    for backend in ("double", "q31"):
        blob_kb = checkpoint.get(f"blob_bytes_{backend}", float("inf")) / 1024.0
        print(f"checkpoint blob [{backend}]: {blob_kb:.1f} KiB "
              f"(ceiling {blob_ceiling_kb} KiB)")
        if blob_kb > blob_ceiling_kb:
            failures.append(
                f"checkpoint blob [{backend}] {blob_kb:.1f} KiB "
                f"exceeds ceiling {blob_ceiling_kb} KiB")
    print(f"checkpoint latency (not gated): save "
          f"{checkpoint.get('save_us_double', 0.0):.0f}/"
          f"{checkpoint.get('save_us_q31', 0.0):.0f} us, restore "
          f"{checkpoint.get('restore_us_double', 0.0):.0f}/"
          f"{checkpoint.get('restore_us_q31', 0.0):.0f} us (double/q31); "
          f"{checkpoint.get('migrations_per_s', 0.0):.0f} migrations/s under load")

    # --- SIMD batch backend -----------------------------------------------
    batch = inputs["BENCH_batch.json"]
    if not batch.get("batch_identical", False):
        failures.append("batched beat streams differ from scalar (lane identity bug)")
    else:
        print("batch identity: lockstep lanes byte-identical to scalar sessions")
    if not batch.get("fleet", {}).get("identical", False):
        failures.append("batched fleet output differs from scalar fleet")
    isa = batch.get("simd", "?")
    w4 = batch.get("speedup_w4", 0.0)
    w8 = batch.get("speedup_w8", 0.0)
    w8_over_w4 = batch.get("w8_over_w4", 0.0)
    # Floors are ISA-tiered. The W=4 floor arms on any AVX2+ build (one
    # ymm per lane vector) but is lower on plain AVX2, where the fused
    # front sped the scalar BASELINE up too. The absolute W=8 floor arms
    # only under AVX-512 (one zmm per lane vector); on plain AVX2 the
    # two-half PairLanes64 lowering (see dsp/simd.h) is instead held to
    # the relative floor: W=8 must not lose to W=4.
    w4_floor = (b_batch["batch_min_speedup_w4"] if isa == "avx512"
                else b_batch["batch_min_speedup_w4_avx2"])
    w8_floor = b_batch["batch_min_speedup_w8"]
    w8_rel_floor = b_batch["batch_min_w8_over_w4"]
    if batch.get("w4_enforced", False):
        print(f"batch speedup W=4 [{isa}]: {w4:.2f}x (floor {w4_floor}x)")
        if w4 < w4_floor:
            failures.append(f"batch W=4 speedup {w4:.2f}x below floor {w4_floor}x")
    else:
        print(f"batch speedup W=4 [{isa}]: {w4:.2f}x (gate skipped: lane ISA "
              f"is {isa}, floor arms on avx2 or wider)")
    if batch.get("w8_enforced", False):
        print(f"batch speedup W=8 [{isa}]: {w8:.2f}x (floor {w8_floor}x)")
        if w8 < w8_floor:
            failures.append(f"batch W=8 speedup {w8:.2f}x below floor {w8_floor}x")
    else:
        print(f"batch speedup W=8 [{isa}]: {w8:.2f}x (gate skipped: lane ISA "
              f"is {isa}, floor arms on avx512)")
    if batch.get("w8_rel_enforced", False):
        print(f"batch W=8/W=4 ratio [{isa}]: {w8_over_w4:.2f}x "
              f"(floor {w8_rel_floor}x)")
        if w8_over_w4 < w8_rel_floor:
            failures.append(
                f"batch W=8 loses to W=4 ({w8_over_w4:.2f}x < {w8_rel_floor}x) — "
                "the wide lowering regressed (dsp/simd.h PairLanes64)")
    else:
        print(f"batch W=8/W=4 ratio [{isa}]: {w8_over_w4:.2f}x (gate skipped: "
              f"lane ISA is {isa}, floor arms on avx2 or wider)")
    profile = batch.get("profile", {})
    tail_us = profile.get("tail_us_per_beat", 0.0)
    front_frac = profile.get("front_fraction", 0.0)
    tail_ceiling = b_batch["batch_max_tail_us_per_beat"]
    if batch.get("w4_enforced", False):
        print(f"batch tail cost (W={profile.get('width', '?')}): "
              f"{tail_us:.1f} us/beat (ceiling {tail_ceiling}), "
              f"front fraction {front_frac:.2f}")
        if tail_us > tail_ceiling:
            failures.append(
                f"batched beat tail {tail_us:.1f} us/beat exceeds ceiling "
                f"{tail_ceiling} — the deferred-tail drain regressed")
    else:
        print(f"batch tail cost: {tail_us:.1f} us/beat (gate skipped: lane ISA "
              f"is {isa}, ceiling arms on avx2 or wider)")

    # --- flight recorder: record overhead + replay fidelity ---------------
    replay = inputs["BENCH_replay.json"]
    if not replay.get("verify_identical", False):
        failures.append(
            "flight-record replay is not byte-identical (determinism bug)")
    else:
        print(f"replay verify: byte-identical on both backends, "
              f"{replay.get('replay_speed_vs_realtime', 0.0):.0f}x realtime "
              "(speed reported, not gated)")
    if not replay.get("seek_identical", False):
        failures.append(
            "flight-record seek suffix diverged from straight-through replay")
    overhead_ceiling = b_replay["replay_max_record_overhead_pct"]
    for backend in ("double", "q31"):
        pct = replay.get(f"record_overhead_pct_{backend}", float("inf"))
        print(f"record overhead [{backend}]: {pct:.2f}% of push cost "
              f"(ceiling {overhead_ceiling}%)")
        if pct > overhead_ceiling:
            failures.append(
                f"recording overhead [{backend}] {pct:.2f}% exceeds the "
                f"{overhead_ceiling}% ceiling — the recorder tap is no longer "
                "cheap enough to leave on in production")
    # Seek latency budget is DERIVED, not committed: a seek is one
    # checkpoint restore (measured by bench_checkpoint on this same
    # runner, so runner speed cancels out) plus a bounded suffix replay
    # with its own committed allowance.
    restore_ms = max(checkpoint.get("restore_us_double", 0.0),
                     checkpoint.get("restore_us_q31", 0.0)) / 1000.0
    seek_budget_ms = restore_ms + b_replay["replay_seek_suffix_budget_ms"]
    seek_ms = replay.get("seek_ms", float("inf"))
    print(f"seek latency: {seek_ms:.2f} ms (budget {seek_budget_ms:.2f} ms = "
          f"{restore_ms:.2f} ms measured restore + "
          f"{b_replay['replay_seek_suffix_budget_ms']} ms suffix allowance)")
    if seek_ms > seek_budget_ms:
        failures.append(
            f"flight-record seek {seek_ms:.2f} ms exceeds the derived budget "
            f"{seek_budget_ms:.2f} ms (checkpoint restore + suffix allowance)")

    if failures:
        print("\nBENCH REGRESSION GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench regression gate: all floors held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
