#!/usr/bin/env python3
"""Extracts the embedded library's memory footprint into BENCH_footprint.json.

Runs binutils `size` over every member of libicgkit_embedded.a and sums
the .text/.data/.bss columns — the flash and static-RAM cost a firmware
image pays for linking the streaming core — then records the largest
symbols from `nm --print-size` so a size regression names its culprits
instead of just a number. The JSON feeds ci/check_bench_regression.py
--only footprint, which gates the totals against the committed budget in
bench/bench_baselines.json.

Usage:
  ci/extract_footprint.py --archive build-embedded/libicgkit_embedded.a \
      --out BENCH_footprint.json [--compiler "$(gcc --version | head -1)"]
"""
import argparse
import json
import pathlib
import subprocess
import sys


def run(cmd):
    try:
        return subprocess.run(cmd, check=True, capture_output=True, text=True).stdout
    except FileNotFoundError:
        sys.exit(f"FAIL: '{cmd[0]}' not found — binutils is required")
    except subprocess.CalledProcessError as e:
        sys.exit(f"FAIL: {' '.join(cmd)} exited {e.returncode}:\n{e.stderr}")


def sum_sections(archive: str):
    """Sums the berkeley-format text/data/bss columns over all members."""
    text = data = bss = 0
    members = 0
    for line in run(["size", archive]).splitlines():
        parts = line.split()
        # "   text    data     bss     dec     hex filename"
        if len(parts) < 6 or not parts[0].isdigit():
            continue
        text += int(parts[0])
        data += int(parts[1])
        bss += int(parts[2])
        members += 1
    if members == 0:
        sys.exit(f"FAIL: `size {archive}` reported no object members")
    return text, data, bss, members


def top_symbols(archive: str, count: int):
    """The `count` largest defined symbols, for regression forensics."""
    symbols = []
    for line in run(["nm", "--print-size", "--size-sort", "--radix=d", archive]).splitlines():
        parts = line.split()
        # "<value> <size> <type> <name>"
        if len(parts) != 4 or not parts[1].isdigit():
            continue
        size, kind, name = int(parts[1]), parts[2], parts[3]
        if kind.lower() in ("u", "w"):
            continue
        symbols.append({"symbol": name, "bytes": size, "type": kind})
    symbols.sort(key=lambda s: s["bytes"], reverse=True)
    return symbols[:count]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--archive", required=True, help="static library to measure")
    ap.add_argument("--out", default="BENCH_footprint.json", help="output JSON path")
    ap.add_argument("--compiler", default="", help="compiler version string to record")
    ap.add_argument("--top", type=int, default=15, help="largest symbols to record")
    args = ap.parse_args()

    archive = pathlib.Path(args.archive)
    if not archive.exists():
        sys.exit(f"FAIL: archive {archive} does not exist — "
                 "build with -DICGKIT_EMBEDDED_PROFILE=ON first")

    text, data, bss, members = sum_sections(str(archive))
    result = {
        "archive": archive.name,
        "members": members,
        "text_bytes": text,
        "data_bytes": data,
        "bss_bytes": bss,
        "total_bytes": text + data + bss,
        "compiler": args.compiler,
        "top_symbols": top_symbols(str(archive), args.top),
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"{archive.name}: .text {text / 1024.0:.1f} KiB, "
          f".data {data / 1024.0:.1f} KiB, .bss {bss / 1024.0:.1f} KiB "
          f"({members} members) -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
