#!/usr/bin/env python3
"""Offline markdown link check for the CI docs job.

Scans every tracked *.md file for inline links and images, and fails the
build when a relative link points at a file that does not exist or an
anchor that no heading generates — so documentation rot (renamed files,
moved sections) is caught the commit it happens, not when a reader hits
a 404. External (http/https/mailto) links are not fetched: CI must stay
deterministic and offline.
"""
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SKIP_DIRS = {"build", ".git", "Testing", ".claude"}

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE_RE = re.compile(r"`[^`\n]*`")


def markdown_files():
    for path in sorted(ROOT.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.relative_to(ROOT).parts):
            continue
        yield path


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, punctuation stripped, spaces to hyphens."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)           # inline formatting
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)  # links -> text
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def strip_code(text: str) -> str:
    return INLINE_CODE_RE.sub("", CODE_FENCE_RE.sub("", text))


def anchors_of(path: pathlib.Path) -> set:
    """All anchors the file's headings generate, with GitHub's duplicate
    suffixing: the second identical heading gets '-1', the third '-2', ..."""
    text = strip_code(path.read_text(encoding="utf-8"))
    anchors = set()
    seen = {}
    for heading in HEADING_RE.findall(text):
        slug = github_slug(heading)
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def main() -> int:
    failures = []
    anchor_cache = {}
    for md in markdown_files():
        rel = md.relative_to(ROOT)
        text = strip_code(md.read_text(encoding="utf-8"))
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if path_part:
                dest = (md.parent / path_part).resolve()
                if not dest.exists():
                    failures.append(f"{rel}: broken link -> {target}")
                    continue
            else:
                dest = md
            if anchor and dest.suffix == ".md":
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(dest)
                if anchor.lower() not in anchor_cache[dest]:
                    failures.append(f"{rel}: broken anchor -> {target}")

    if failures:
        print("MARKDOWN LINK CHECK FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    count = len(list(markdown_files()))
    print(f"markdown link check: {count} files, all relative links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
